"""Warps: the GPU's unit of lock-step execution.

Each warp alternates compute bursts (``gap`` instructions from its
trace) with one memory instruction.  The SM's issue server serializes
bursts from its warps; a warp blocked on memory costs nothing until its
response arrives — this is warp-level latency hiding, and it is what
converts memory-system improvements into IPC (Fig. 16).

Two implementations share those semantics:

* :class:`Warp` — the classic callback pair (``_next_burst`` /
  ``_issue_memory``) scheduled on the engine's generic heap.  Kept as
  the reference implementation and for driving a warp standalone.
* :class:`WarpLane` — the fused stepper behind the engine's typed warp
  lane (see ``sim/engine.py``).  All warps' progress lives in slotted
  columns (cursor/retired arrays, per-warp trace columns) and one
  table-driven loop steps whichever warp the lane heap surfaces next.
  Because ``StreamingMultiprocessor.access_memory`` returns completion
  times synchronously, each step computes its successor event inline
  and replaces the heap head in a single sift — no tuples, closures or
  bound-method dispatch per event.  Event order is bit-identical to the
  callback pair: both phases remain distinct timeline events with the
  same ``(time, seq)`` stamps the golden fingerprints freeze.
"""

from __future__ import annotations

import heapq
from array import array
from typing import TYPE_CHECKING, Callable, List, Optional, Union

from repro.sim.engine import (
    LANE_SEQ_BITS,
    LANE_SEQ_LIMIT,
    LANE_SEQ_MASK,
    LANE_TIME_SHIFT,
    LANE_WARP_BITS,
    LANE_WARP_MASK,
    Engine,
)
from repro.sim.stats import Stats
from repro.workloads.source import WarpStream
from repro.workloads.synthetic import WarpTrace

if TYPE_CHECKING:
    from repro.gpu.sm import StreamingMultiprocessor
    from repro.workloads.trace import TraceRecorder

#: Lane phase payloads: the warp's next step issues a compute burst /
#: issues its pending memory instruction.
PHASE_BURST = 0
PHASE_MEM = 1


def _capture_sm_methods() -> dict:
    # Captured at import, before any test/subclass patches: the exact
    # functions whose semantics WarpLane inlines.  The lane compares
    # against these to decide whether inlining is sound.
    from repro.gpu.sm import StreamingMultiprocessor

    return {
        "issue_burst": StreamingMultiprocessor.issue_burst,
        "access_memory": StreamingMultiprocessor.access_memory,
        "_access_uncached": StreamingMultiprocessor._access_uncached,
    }


_SM_METHODS = _capture_sm_methods()


class Warp:
    """Replays one warp's access stream through its SM and memory.

    ``trace`` is either a materialized :class:`WarpTrace` or a
    :class:`~repro.workloads.source.WarpStream` (bounded-lookahead
    block iterator).  Both are kept on ``self.trace`` — the audit layer
    duck-types against it (``tenant`` / ``len`` / ``well_formed``).
    Block pulls are lazy, so a Warp and the :class:`WarpLane` can share
    one stream: only whichever of the two actually drives the warp
    consumes it.

    An optional :class:`~repro.workloads.trace.TraceRecorder` captures
    every executed ``(gap, addr, write)`` at memory-issue time — the
    record side of trace record/replay.  The hot path pays one
    attribute check per access when no recorder is attached.
    """

    __slots__ = (
        "warp_id",
        "sm",
        "trace",
        "on_done",
        "_stream",
        "_gaps",
        "_addrs",
        "_writes",
        "_num_ops",
        "_base",
        "_at",
        "_cursor",
        "_recorder",
        "instructions_retired",
        "finished",
    )

    def __init__(
        self,
        warp_id: int,
        sm: "StreamingMultiprocessor",
        trace: Union[WarpTrace, WarpStream],
        on_done: Callable[["Warp"], None],
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self.warp_id = warp_id
        self.sm = sm
        self.trace = trace
        self.on_done = on_done
        if isinstance(trace, WarpStream):
            # Lazy: the first burst pulls the first block.
            self._stream: Optional[WarpStream] = trace
            self._gaps: List[int] = []
            self._addrs: List[int] = []
            self._writes: List[bool] = []
            self._num_ops = 0
        else:
            self._stream = None
            self._gaps, self._addrs, self._writes = trace.columns
            self._num_ops = len(self._addrs)
        self._base = 0  # ops consumed in earlier blocks
        self._at = sm.engine.at
        self._cursor = 0  # index within the current block
        self._recorder = recorder
        self.instructions_retired = 0
        self.finished = False

    def start(self) -> None:
        self._next_burst()

    def _advance(self) -> bool:
        """Pull the next block; False when the stream is exhausted."""
        if self._stream is None:
            return False
        block = self._stream.next_block()
        if block is None:
            return False
        self._base += self._num_ops
        self._gaps, self._addrs, self._writes = block
        self._num_ops = len(self._addrs)
        self._cursor = 0
        return True

    def _next_burst(self) -> None:
        cursor = self._cursor
        if cursor >= self._num_ops:
            if self._advance():
                cursor = 0
            else:
                self.finished = True
                self._cursor = self._base + self._num_ops
                self.on_done(self)
                return
        gap = self._gaps[cursor]
        burst_end = self.sm.issue_burst(gap + 1)  # +1: the memory inst
        self.instructions_retired += gap + 1
        self._at(burst_end, self._issue_memory)

    def _issue_memory(self) -> None:
        cursor = self._cursor
        addr = self._addrs[cursor]
        write = self._writes[cursor]
        if self._recorder is not None:
            self._recorder.record(self.warp_id, self._gaps[cursor], addr, write)
        complete = self.sm.access_memory(addr, write)
        self._cursor = cursor + 1
        self._at(complete, self._next_burst)


class WarpLane:
    """Array-structured stepper for every warp, on the engine's warp lane.

    Owns the slotted per-warp state (``cursor``/``retired`` columns plus
    the traces compiled to parallel gap/addr/write lists) and installs
    two entry points on the engine: ``step`` (one event, used by the
    guarded/validating drains) and ``drain`` (the fused bulk loop the
    full drain delegates runs of lane events to).

    The :class:`Warp` objects stay the user-visible surface — the lane
    mirrors ``instructions_retired``/``_cursor``/``finished`` back into
    them at finish and via :meth:`sync`.
    """

    __slots__ = (
        "_engine",
        "_warps",
        "_num_warps",
        "_cursor",
        "_retired",
        "_nops",
        "_base",
        "_streams",
        "_gaps",
        "_addrs",
        "_writes",
        "_sms",
        "_access",
        "_mem_fp",
        "_issue",
        "_inline_burst",
        "_period",
        "_recorder",
        "_on_done",
        "_cdict",
    )

    def __init__(
        self,
        engine: Engine,
        warps: List[Warp],
        stats: Stats,
        on_done: Callable[[Warp], None],
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self._engine = engine
        self._warps = warps
        n = len(warps)
        self._num_warps = n
        self._cursor = array("q", bytes(8 * n))  # index within the block
        self._retired = array("q", bytes(8 * n))
        self._base = array("q", bytes(8 * n))  # ops consumed before it
        self._nops: List[int] = []
        self._streams: List[Optional[WarpStream]] = []
        self._gaps: List[List[int]] = []
        self._addrs: List[List[int]] = []
        self._writes: List[List[bool]] = []
        self._sms = [w.sm for w in warps]
        # The lane inlines SM issue accounting and binds the fast memory
        # entry point — but only for pristine SMs.  A subclassed or
        # patched SM (the audit drift tests inject counter leaks this
        # way) keeps its methods on the event path.  "Pristine" means
        # the method is still the exact function this module captured at
        # import time, with no instance override shadowing it.
        def _pristine(sm: "StreamingMultiprocessor", name: str) -> bool:
            return (
                name not in sm.__dict__
                and getattr(type(sm), name) is _SM_METHODS[name]
            )

        self._inline_burst = all(_pristine(w.sm, "issue_burst") for w in warps)
        self._issue = [w.sm.issue_burst for w in warps]
        self._access = [
            w.sm.fast_access
            if _pristine(w.sm, "access_memory")
            and _pristine(w.sm, "_access_uncached")
            else w.sm.access_memory
            for w in warps
        ]
        self._period = [w.sm.period_ps for w in warps]
        # Drain-level memory fusion: when *every* warp's memory entry
        # point is the pristine uncached fast path and all SMs share one
        # constant pack (they always do on a real model — the pack holds
        # the shared engine/interconnect/slices/stats handles, and the
        # only per-SM state, ``_issue_free_at``, lives in the burst
        # phase), the fused drain unpacks that one tuple before its loop
        # and inlines the whole access in the MEM branch — no bound call
        # per memory event.  Any mixed or patched configuration keeps
        # the per-warp ``access[w](...)`` dispatch.
        uncached = _SM_METHODS["_access_uncached"]
        mem_fp = None
        if n and all(
            getattr(a, "__func__", None) is uncached for a in self._access
        ):
            base = self._sms[0]._fp
            if base is not None and all(
                sm._fp == base for sm in self._sms
            ):
                mem_fp = base
        self._mem_fp = mem_fp
        for w in warps:
            trace = w.trace
            if isinstance(trace, WarpStream):
                # Streamed warp: start empty, the first burst pulls the
                # first block (lazy, so the Warp object sharing this
                # stream never double-consumes it — only one of the two
                # drives the warp).
                self._streams.append(trace)
                self._nops.append(0)
                self._gaps.append([])
                self._addrs.append([])
                self._writes.append([])
            else:
                self._streams.append(None)
                gaps, addrs, writes = trace.columns
                self._nops.append(len(addrs))
                self._gaps.append(gaps)
                self._addrs.append(addrs)
                self._writes.append(writes)
        self._recorder = recorder
        self._on_done = on_done
        self._cdict = stats.counters
        engine.attach_warp_lane(n, self._step_one, self._drain)

    # -- slow-path stepping (start, guarded/validating drains) ----------

    def start_all(self) -> None:
        """Issue every warp's first burst synchronously, in warp order.

        Mirrors the classic ``warp.start()`` loop: the first burst is
        not an event, it runs at the current time and schedules the
        warp's first memory issue on the lane.
        """
        for w in range(self._num_warps):
            self._burst(w, self._engine.now)

    def _advance(self, w: int) -> bool:
        """Swap warp ``w``'s next block in; False when exhausted.

        The swap is in-place on the per-warp column slots
        (``self._gaps[w] = ...``), so the fused drain's local aliases of
        the *outer* lists observe it mid-loop.  Runs once per block
        boundary — every ``block_ops`` events, not per event.
        """
        stream = self._streams[w]
        if stream is None:
            return False
        block = stream.next_block()
        if block is None:
            return False
        gaps, addrs, writes = block
        self._base[w] += self._nops[w]
        self._gaps[w] = gaps
        self._addrs[w] = addrs
        self._writes[w] = writes
        self._nops[w] = len(addrs)
        self._cursor[w] = 0
        return True

    def _burst(self, w: int, now: int) -> None:
        """One burst phase for warp ``w`` (or its finish)."""
        cursor = self._cursor[w]
        if cursor >= self._nops[w]:
            if self._advance(w):
                cursor = 0
            else:
                self._finish(w)
                return
        gap = self._gaps[w][cursor]
        n = gap + 1
        if self._inline_burst:
            if n < 1:
                raise ValueError("a burst needs at least one instruction")
            sm = self._sms[w]
            free = sm._issue_free_at
            start = now if now > free else free
            end = start + n * self._period[w]
            sm._issue_free_at = end
            self._cdict["gpu.instructions"] += n
        else:
            end = self._issue[w](n)
        self._retired[w] += n
        self._engine.lane_schedule(w, end, PHASE_MEM)

    def _mem(self, w: int, now: int) -> None:
        """One memory-issue phase for warp ``w``."""
        cursor = self._cursor[w]
        addr = self._addrs[w][cursor]
        write = self._writes[w][cursor]
        if self._recorder is not None:
            self._recorder.record(w, self._gaps[w][cursor], addr, write)
        complete = self._access[w](addr, write)
        self._cursor[w] = cursor + 1
        self._engine.lane_schedule(w, complete, PHASE_BURST)

    def _finish(self, w: int) -> None:
        warp = self._warps[w]
        warp.finished = True
        warp.instructions_retired = self._retired[w]
        warp._cursor = self._base[w] + self._cursor[w]
        self._on_done(warp)

    def _step_one(self, w: int, phase: int) -> None:
        """Execute one lane event (engine ``step``/guarded-drain hook)."""
        if phase == PHASE_MEM:
            self._mem(w, self._engine.now)
        else:
            self._burst(w, self._engine.now)

    def sync(self) -> None:
        """Mirror lane columns back into the :class:`Warp` objects."""
        cursors = self._cursor
        retired = self._retired
        base = self._base
        for w, warp in enumerate(self._warps):
            warp.instructions_retired = retired[w]
            warp._cursor = base[w] + cursors[w]

    # -- fused drain ----------------------------------------------------

    def _drain(self) -> None:
        """Run lane events in order while they precede the generic head.

        The engine's full drain hands control here whenever the lane
        head is the global minimum.  Everything per-event is a local:
        the loop peeks the lane head, inlines the phase body, and
        replaces the head with the successor event in a single heap
        sift (``heapreplace``), touching ``engine.now`` once per event
        and flushing ``_seq`` and ``events_processed`` on exit.  The
        generic-heap head is re-read every iteration (a step may push a
        generic event mid-drain), so the yield condition needs no
        arguments — when the generic heap is empty there is no limit
        test at all.

        When :attr:`_mem_fp` is set (every SM shares the pristine
        uncached fast path), the MEM branch runs the whole access
        inline — crossbar window, page-interleave routing, the slice
        ``serve`` call and the demand counters — against constants
        unpacked once before the loop; the arithmetic and the update
        order are exactly ``StreamingMultiprocessor._access_uncached``.

        Constant per-event counter increments (``noc.bits``,
        ``noc.busy_ps``, ``mem.demand_requests``, ``gpu.instructions``
        and the memory-latency stat) accumulate in locals and flush in
        one batch on exit.  That is exact: all of them are
        integer-valued accumulators, so ``n`` adds of a constant and
        one add of ``n * constant`` produce the same float, and
        min/max merge associatively.  Nothing observes these counters
        mid-drain (readers run post-drain; ``on_done`` touches only
        the model's completion fields), and the flush sits in the
        ``finally`` — split so an event that raises mid-body leaves
        exactly the updates the reference ordering would have made.

        The lane's ``_lane_time``/``_lane_seq`` columns are *not*
        updated here: the encoded heap key is authoritative for
        ordering and ``_lane_step_min`` decodes the timestamp from it,
        so those columns are informational mirrors written only by
        ``lane_schedule`` (the slow path).  ``_lane_phase`` stays
        exact — it drives dispatch.
        """
        eng = self._engine
        heap = eng._lane_heap
        gq = eng._queue
        phases = eng._lane_phase
        cursors = self._cursor
        retired = self._retired
        base = self._base
        nops = self._nops
        gaps = self._gaps
        addrs = self._addrs
        writes = self._writes
        sms = self._sms
        periods = self._period
        access = self._access
        issue = self._issue
        inline_burst = self._inline_burst
        warps = self._warps
        rec = self._recorder
        cd = self._cdict
        heapreplace = heapq.heapreplace
        heappop = heapq.heappop
        seq = eng._seq
        count = eng.events_processed
        seq_mask = LANE_SEQ_MASK
        warp_mask = LANE_WARP_MASK
        time_shift = LANE_TIME_SHIFT
        warp_bits = LANE_WARP_BITS
        seq_bits = LANE_SEQ_BITS
        mem_fp = self._mem_fp
        if mem_fp is not None:
            (
                _engine, ic, noc_cd, line_bits, occupancy,
                ic_latency, slices, page_bytes, nslices, mem_cd, lat,
            ) = mem_fp
        # Batched counter accumulators (flushed in the ``finally``).
        # ``noc_n`` counts crossbar windows opened (committed *before*
        # the serve call in the reference ordering); ``mem_n`` counts
        # accesses that completed (committed after).
        noc_n = 0
        mem_n = 0
        lat_total = 0
        lat_min = 0
        lat_max = 0
        burst_insns = 0
        try:
            while heap:
                key = heap[0]
                t = key >> time_shift
                if gq:
                    head = gq[0]
                    ht = head[0]
                    if t > ht or (
                        t == ht and (key >> warp_bits) & seq_mask > head[1]
                    ):
                        return
                count += 1
                eng.now = t
                w = key & warp_mask
                if phases[w] == 1:  # PHASE_MEM
                    cursor = cursors[w]
                    addr = addrs[w][cursor]
                    write = writes[w][cursor]
                    if rec is not None:
                        rec.record(w, gaps[w][cursor], addr, write)
                    if mem_fp is None:
                        complete = access[w](addr, write)
                    else:
                        # _access_uncached, fully inlined (same
                        # arithmetic and counter-update order).
                        busy = ic._busy_until
                        start = t if t > busy else busy
                        ic._busy_until = start + occupancy
                        noc_n += 1
                        if addr < 0:
                            raise ValueError("negative address")
                        page = addr // page_bytes
                        complete = slices[page % nslices].serve(
                            (page // nslices) * page_bytes
                            + (addr - page * page_bytes),
                            write,
                            start + occupancy + ic_latency,
                        )
                        value = complete - t
                        if mem_n == 0:
                            lat_min = value
                            lat_max = value
                        elif value < lat_min:
                            lat_min = value
                        elif value > lat_max:
                            lat_max = value
                        mem_n += 1
                        lat_total += value
                    cursors[w] = cursor + 1
                    phases[w] = 0  # PHASE_BURST
                    heapreplace(
                        heap, ((complete << seq_bits) | seq) << warp_bits | w
                    )
                    seq += 1
                else:  # PHASE_BURST (block advance, or finish)
                    cursor = cursors[w]
                    if cursor >= nops[w]:
                        if self._advance(w):
                            # _advance swapped the column slots in place
                            # (the local aliases of the outer lists see
                            # the new block) and zeroed cursors[w].
                            cursor = 0
                        else:
                            heappop(heap)
                            phases[w] = -1  # LANE_IDLE
                            warp = warps[w]
                            warp.finished = True
                            warp.instructions_retired = retired[w]
                            warp._cursor = base[w] + cursor
                            self._on_done(warp)
                            continue  # no successor event, seq unchanged
                    gap = gaps[w][cursor]
                    n = gap + 1
                    if inline_burst:
                        if n < 1:
                            raise ValueError(
                                "a burst needs at least one instruction"
                            )
                        sm = sms[w]
                        free = sm._issue_free_at
                        start = t if t > free else free
                        end = start + n * periods[w]
                        sm._issue_free_at = end
                        burst_insns += n
                    else:
                        end = issue[w](n)
                    retired[w] += n
                    phases[w] = 1  # PHASE_MEM
                    heapreplace(
                        heap, ((end << seq_bits) | seq) << warp_bits | w
                    )
                    seq += 1
                if seq >= LANE_SEQ_LIMIT:
                    raise OverflowError("event sequence space exhausted")
        finally:
            eng._seq = seq
            eng.events_processed = count
            if burst_insns:
                cd["gpu.instructions"] += burst_insns
            if noc_n:
                noc_cd["noc.bits"] += noc_n * line_bits
                noc_cd["noc.busy_ps"] += noc_n * occupancy
            if mem_n:
                mem_cd["mem.demand_requests"] += mem_n
                if lat.count == 0:
                    lat.min_value = lat_min
                    lat.max_value = lat_max
                else:
                    if lat_min < lat.min_value:
                        lat.min_value = lat_min
                    if lat_max > lat.max_value:
                        lat.max_value = lat_max
                lat.count += mem_n
                lat.total += lat_total
