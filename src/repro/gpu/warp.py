"""A warp: the GPU's unit of lock-step execution.

Each warp alternates compute bursts (``gap`` instructions from its
trace) with one memory instruction.  The SM's issue server serializes
bursts from its warps; a warp blocked on memory costs nothing until its
response arrives — this is warp-level latency hiding, and it is what
converts memory-system improvements into IPC (Fig. 16).

The trace is compiled to plain Python ``(gap, addr, write)`` tuples at
warp construction (see :attr:`~repro.workloads.synthetic.WarpTrace.ops`)
so the two per-access callbacks below do no numpy scalar conversion and
allocate nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.workloads.synthetic import WarpTrace

if TYPE_CHECKING:
    from repro.gpu.sm import StreamingMultiprocessor
    from repro.workloads.trace import TraceRecorder


class Warp:
    """Replays one WarpTrace through its SM and the memory system.

    An optional :class:`~repro.workloads.trace.TraceRecorder` captures
    every executed ``(gap, addr, write)`` at memory-issue time — the
    record side of trace record/replay.  The hot path pays one
    attribute check per access when no recorder is attached.
    """

    __slots__ = (
        "warp_id",
        "sm",
        "trace",
        "on_done",
        "_ops",
        "_num_ops",
        "_at",
        "_cursor",
        "_recorder",
        "instructions_retired",
        "finished",
    )

    def __init__(
        self,
        warp_id: int,
        sm: "StreamingMultiprocessor",
        trace: WarpTrace,
        on_done: Callable[["Warp"], None],
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self.warp_id = warp_id
        self.sm = sm
        self.trace = trace
        self.on_done = on_done
        self._ops = trace.ops  # compiled (gap, addr, write) tuples
        self._num_ops = len(self._ops)
        self._at = sm.engine.at
        self._cursor = 0
        self._recorder = recorder
        self.instructions_retired = 0
        self.finished = False

    def start(self) -> None:
        self._next_burst()

    def _next_burst(self) -> None:
        cursor = self._cursor
        if cursor >= self._num_ops:
            self.finished = True
            self.on_done(self)
            return
        gap = self._ops[cursor][0]
        burst_end = self.sm.issue_burst(gap + 1)  # +1: the memory inst
        self.instructions_retired += gap + 1
        self._at(burst_end, self._issue_memory)

    def _issue_memory(self) -> None:
        cursor = self._cursor
        op = self._ops[cursor]
        if self._recorder is not None:
            self._recorder.record(self.warp_id, op[0], op[1], op[2])
        complete = self.sm.access_memory(op[1], op[2])
        self._cursor = cursor + 1
        self._at(complete, self._next_burst)
