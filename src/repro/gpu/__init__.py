"""GPU substrate: SMs with warp-level latency hiding, L1/L2 caches and
the SM<->L2 interconnect (Figure 2's baseline GPU)."""

from repro.gpu.cache import CacheStats, SetAssocCache
from repro.gpu.gpu import GpuModel, RunResult
from repro.gpu.interconnect import Interconnect
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.warp import Warp

__all__ = [
    "SetAssocCache",
    "CacheStats",
    "Interconnect",
    "StreamingMultiprocessor",
    "Warp",
    "GpuModel",
    "RunResult",
]
