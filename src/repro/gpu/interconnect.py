"""SM <-> L2/memory-controller interconnect (Figure 2).

A crossbar with a fixed traversal latency and an aggregate bandwidth
cap.  It sits between the warps and the memory system; its occupancy is
rarely the bottleneck (the paper's bottleneck is the memory channel)
but it keeps request arrival times honest.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import ns
from repro.sim.stats import Stats


class Interconnect:
    """Fixed-latency, bandwidth-capped crossbar."""

    __slots__ = ("latency_ps", "_bits_per_ps", "_busy_until", "stats", "_cdict")

    def __init__(
        self,
        latency_ns: float = 20.0,
        bandwidth_bits_per_ns: float = 4096.0,
        stats: Optional[Stats] = None,
    ) -> None:
        if bandwidth_bits_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency_ps = ns(latency_ns)
        self._bits_per_ps = bandwidth_bits_per_ns / 1000.0
        self._busy_until = 0
        self.stats = stats if stats is not None else Stats()
        self._cdict = self.stats.counters

    def occupancy_ps(self, bits: int) -> int:
        """Crossbar occupancy for one ``bits``-sized transfer.

        Exposed so callers moving a fixed-size payload (the SM's cache
        line) can precompute the occupancy once and inline the busy-time
        bookkeeping of :meth:`traverse`.
        """
        occupancy = int(round(bits / self._bits_per_ps))
        return occupancy if occupancy >= 1 else 1

    def traverse(self, now_ps: int, bits: int) -> int:
        """Send ``bits`` across; returns delivery time."""
        if bits <= 0:
            raise ValueError("need a positive bit count")
        busy = self._busy_until
        start = now_ps if now_ps > busy else busy
        occupancy = int(round(bits / self._bits_per_ps))
        if occupancy < 1:
            occupancy = 1
        self._busy_until = start + occupancy
        counters = self._cdict
        counters["noc.bits"] += bits
        counters["noc.busy_ps"] += occupancy
        return start + occupancy + self.latency_ps
