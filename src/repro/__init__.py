"""Ohm-GPU reproduction: an optical-network heterogeneous GPU memory
simulator (Zhang & Jung, MICRO 2021).

Quickstart::

    from repro import Runner, RunConfig, MemoryMode

    runner = Runner(RunConfig(num_warps=96, accesses_per_warp=40))
    result = runner.run("Ohm-BW", "pagerank", MemoryMode.PLANAR)
    print(result.ipc, result.mean_mem_latency_ps)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.config import (
    GB,
    KB,
    MB,
    MemoryMode,
    SystemConfig,
    default_config,
)
from repro.core.platforms import PLATFORMS, Platform, build_memory_system
from repro.gpu.gpu import GpuModel, RunResult
from repro.harness.batch import BatchRun
from repro.harness.cache import ResultCache
from repro.harness.executor import (
    ParallelExecutor,
    RunConfig,
    SerialExecutor,
    SimulationJob,
    execute_job,
)
from repro.harness.audit import AuditOutcome, audit_jobs, run_audit
from repro.harness.runner import Runner
from repro.harness.store import ResultStore
from repro.sim.audit import Auditor, InvariantError, InvariantViolation
from repro.workloads.registry import (
    REGISTRY,
    WORKLOADS,
    build_traces,
    generate_traces,
    get_workload,
    get_workload_def,
    register_workload,
    workload_names,
)
from repro.workloads.spec import WorkloadDef, WorkloadSpec, make_def

__version__ = "1.4.0"

__all__ = [
    "MemoryMode",
    "SystemConfig",
    "default_config",
    "PLATFORMS",
    "Platform",
    "build_memory_system",
    "GpuModel",
    "RunResult",
    "Runner",
    "RunConfig",
    "SimulationJob",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_job",
    "Auditor",
    "InvariantError",
    "InvariantViolation",
    "AuditOutcome",
    "audit_jobs",
    "run_audit",
    "ResultCache",
    "BatchRun",
    "ResultStore",
    "WORKLOADS",
    "REGISTRY",
    "WorkloadSpec",
    "WorkloadDef",
    "make_def",
    "get_workload",
    "get_workload_def",
    "register_workload",
    "workload_names",
    "generate_traces",
    "build_traces",
    "KB",
    "MB",
    "GB",
]
