"""Request/response records that flow through the memory system."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_req_ids = itertools.count()


class RequestKind(enum.Enum):
    """Why a transfer is on the channel.

    The paper's whole point is the distinction between *demand* traffic
    (GPU loads/stores) and *migration* traffic (DRAM↔XPoint copies), so
    every channel occupancy is tagged with one of these.
    """

    DEMAND = "demand"
    MIGRATION = "migration"
    HOST_DMA = "host_dma"


@dataclass(slots=True)
class Access:
    """A single memory access emitted by a warp (post-L2, line granular)."""

    addr: int
    is_write: bool
    size_bytes: int = 128


@dataclass(slots=True)
class MemRequest:
    """A demand request travelling from an SM to memory and back.

    Slotted but *not* frozen (a frozen dataclass pays an
    ``object.__setattr__`` per field per construction).  The simulator's
    hottest path no longer allocates requests at all — warps hand bare
    ``(addr, is_write)`` pairs to the SM — so only L2 writebacks and
    harness-level callers build these.
    """

    addr: int
    is_write: bool
    size_bytes: int
    sm_id: int
    warp_id: int
    kind: RequestKind = RequestKind.DEMAND
    issue_ps: int = 0
    complete_ps: Optional[int] = None
    served_by: str = ""  # "dram" | "xpoint" | "host"
    req_id: int = field(default_factory=lambda: next(_req_ids))

    @classmethod
    def demand(
        cls,
        addr: int,
        is_write: bool,
        size_bytes: int,
        sm_id: int,
        warp_id: int,
        issue_ps: int,
    ) -> "MemRequest":
        """Positional constructor for the common demand-read/write shape."""
        return cls(addr, is_write, size_bytes, sm_id, warp_id, issue_ps=issue_ps)

    @property
    def latency_ps(self) -> int:
        if self.complete_ps is None:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.complete_ps - self.issue_ps
