"""Counters, mean/extreme trackers and fixed-bin histograms.

Every component takes a shared :class:`Stats` so a single object holds
the whole run's measurements; the experiment harness then reads named
counters out of it.

Hot components do not call :meth:`Stats.add` with an f-string name per
event.  They resolve their keys **once at construction** into pre-bound
handles — :meth:`Stats.counter` returns a :class:`Counter` accumulator
and :meth:`Stats.latency_handle` returns the named
:class:`LatencyStat` itself — and the per-event work collapses to one
dict update on an already-hashed key (see DESIGN.md, "Performance").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(slots=True)
class LatencyStat:
    """Streaming mean/min/max without storing samples.

    Slotted: the hot paths (``StreamingMultiprocessor._access_uncached``
    and the warp lane's fused drain) update the four fields in place per
    memory event, and slot descriptors make those loads/stores cheaper
    than ``__dict__`` lookups.
    """

    count: int = 0
    total: int = 0
    min_value: int = 0
    max_value: int = 0

    def record(self, value: int) -> None:
        if self.count == 0:
            self.min_value = value
            self.max_value = value
        else:
            if value < self.min_value:
                self.min_value = value
            elif value > self.max_value:
                self.max_value = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStat") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.min_value, self.max_value = other.min_value, other.max_value
        else:
            self.min_value = min(self.min_value, other.min_value)
            self.max_value = max(self.max_value, other.max_value)
        self.count += other.count
        self.total += other.total


class Counter:
    """A pre-bound accumulator for one named counter.

    Holds the shared counter dict and its own key, so the per-event cost
    is a single ``dict[key] += value`` with a cached string hash — no
    name formatting, no :class:`Stats` dispatch.  Entries appear in the
    shared dict on first :meth:`add`, exactly as with ``Stats.add``, so
    binding a handle never changes a snapshot.
    """

    __slots__ = ("_counters", "name")

    def __init__(self, counters: Dict[str, float], name: str) -> None:
        self._counters = counters
        self.name = name

    def add(self, value: float = 1.0) -> None:
        self._counters[self.name] += value

    @property
    def value(self) -> float:
        return self._counters.get(self.name, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-width-bin histogram for latency distributions.

    Binning semantics are explicit: bin ``k`` covers the half-open
    interval ``[k * bin_width, (k + 1) * bin_width)`` for **any**
    integer value, negative included — ``-1`` with ``bin_width=10``
    lands in the bin starting at ``-10``, not in the zero bin.  The
    width must be a positive integer so bin keys (and the bin starts
    :meth:`items` reports) stay exact ints; a float width would leak
    float keys and floating-point bin boundaries into the results.
    """

    __slots__ = ("bin_width", "bins", "_count")

    def __init__(self, bin_width: int) -> None:
        # bool is an int subclass; Histogram(True) is a bug, not width 1.
        if isinstance(bin_width, bool) or not isinstance(bin_width, int):
            raise TypeError(
                f"bin_width must be an int, got {type(bin_width).__name__}"
            )
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        self.bin_width = bin_width
        self.bins: Dict[int, int] = defaultdict(int)
        self._count = 0

    def bin_of(self, value: int) -> int:
        """Start of the bin covering ``value`` (floor semantics).

        Python's ``//`` floors toward negative infinity, which is
        exactly the half-open-interval behaviour documented above; this
        helper names that choice so callers never have to reason about
        floor-division on negatives themselves.
        """
        return (int(value) // self.bin_width) * self.bin_width

    def record(self, value: int) -> None:
        self.bins[int(value) // self.bin_width] += 1
        self._count += 1

    def items(self) -> List[tuple[int, int]]:
        """``(bin_start, count)`` pairs sorted by bin (negatives first)."""
        return [(b * self.bin_width, c) for b, c in sorted(self.bins.items())]

    @property
    def count(self) -> int:
        """Total samples recorded (maintained incrementally)."""
        return self._count

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile, resolved to its bin start.

        Returns the start of the bin holding the sample at rank
        ``ceil(p/100 * count)`` (1-indexed, samples ordered by bin) —
        the conventional nearest-rank definition, quantized to bin
        resolution.  Bin starts are exact ints, so percentile values
        are reproducible across platforms; an empty histogram reports
        ``0``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self._count == 0:
            return 0
        rank = max(1, -(-int(p * self._count) // 100))  # ceil without floats
        seen = 0
        for b, c in sorted(self.bins.items()):
            seen += c
            if seen >= rank:
                return b * self.bin_width
        return b * self.bin_width  # pragma: no cover - unreachable


@dataclass(slots=True)
class Stats:
    """A run's shared scoreboard of named counters and latency stats."""

    counters: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    latencies: Dict[str, LatencyStat] = field(default_factory=dict)
    _counter_handles: Dict[str, Counter] = field(
        default_factory=dict, repr=False, compare=False
    )
    _flush_hooks: List = field(default_factory=list, repr=False, compare=False)

    def add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] += value

    def register_flush(self, hook) -> None:
        """Register a deferred-counter flush hook.

        Hot components may batch *integer-valued* counter increments in
        locals/instance fields (n adds of a constant and one add of the
        sum produce the same float, exactly) and fold them in on demand.
        Every read surface — :meth:`get` and :meth:`snapshot` — runs the
        hooks first, so batching is never observable.  Hooks must be
        idempotent (zero their accumulators before adding).
        """
        self._flush_hooks.append(hook)

    def flush_deferred(self) -> None:
        """Run all registered flush hooks (see :meth:`register_flush`)."""
        for hook in self._flush_hooks:
            hook()

    def get(self, name: str, default: float = 0.0) -> float:
        if self._flush_hooks:
            self.flush_deferred()
        return self.counters.get(name, default)

    def counter(self, name: str) -> Counter:
        """Pre-bound handle for ``name``; resolve once, add many times."""
        handle = self._counter_handles.get(name)
        if handle is None:
            handle = self._counter_handles[name] = Counter(self.counters, name)
        return handle

    def record_latency(self, name: str, value: int) -> None:
        stat = self.latencies.get(name)
        if stat is None:
            stat = self.latencies[name] = LatencyStat()
        stat.record(value)

    def latency(self, name: str) -> LatencyStat:
        return self.latencies.get(name, LatencyStat())

    def latency_handle(self, name: str) -> LatencyStat:
        """Pre-bound :class:`LatencyStat` for ``name`` (created if new).

        Hot paths call ``handle.record(v)`` directly instead of
        :meth:`record_latency`'s per-event dict lookup.  An unused
        handle never shows up in :meth:`snapshot` (zero-count stats are
        skipped there).
        """
        stat = self.latencies.get(name)
        if stat is None:
            stat = self.latencies[name] = LatencyStat()
        return stat

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy of all counters plus latency summaries.

        Each recorded latency contributes ``.mean``/``.count`` and its
        tracked extremes ``.min``/``.max``; never-recorded stats (e.g. a
        bound handle that saw no samples) are omitted.
        """
        if self._flush_hooks:
            self.flush_deferred()
        out = dict(self.counters)
        for name, stat in self.latencies.items():
            if stat.count == 0:
                continue
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.count"] = stat.count
            out[f"{name}.min"] = stat.min_value
            out[f"{name}.max"] = stat.max_value
        return out
