"""Counters, mean/extreme trackers and fixed-bin histograms.

Every component takes a shared :class:`Stats` so a single object holds
the whole run's measurements; the experiment harness then reads named
counters out of it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class LatencyStat:
    """Streaming mean/min/max without storing samples."""

    count: int = 0
    total: int = 0
    min_value: int = 0
    max_value: int = 0

    def record(self, value: int) -> None:
        if self.count == 0:
            self.min_value = value
            self.max_value = value
        else:
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStat") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.min_value, self.max_value = other.min_value, other.max_value
        else:
            self.min_value = min(self.min_value, other.min_value)
            self.max_value = max(self.max_value, other.max_value)
        self.count += other.count
        self.total += other.total


class Histogram:
    """Fixed-width-bin histogram for latency distributions."""

    def __init__(self, bin_width: int) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.bins: Dict[int, int] = defaultdict(int)

    def record(self, value: int) -> None:
        self.bins[value // self.bin_width] += 1

    def items(self) -> List[tuple[int, int]]:
        """``(bin_start, count)`` pairs sorted by bin."""
        return [(b * self.bin_width, c) for b, c in sorted(self.bins.items())]

    @property
    def count(self) -> int:
        return sum(self.bins.values())


@dataclass
class Stats:
    """A run's shared scoreboard of named counters and latency stats."""

    counters: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    latencies: Dict[str, LatencyStat] = field(default_factory=dict)

    def add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] += value

    def get(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def record_latency(self, name: str, value: int) -> None:
        stat = self.latencies.get(name)
        if stat is None:
            stat = self.latencies[name] = LatencyStat()
        stat.record(value)

    def latency(self, name: str) -> LatencyStat:
        return self.latencies.get(name, LatencyStat())

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy of all counters plus latency means."""
        out = dict(self.counters)
        for name, stat in self.latencies.items():
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.count"] = stat.count
        return out
