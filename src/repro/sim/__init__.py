"""Discrete-event simulation kernel used by every Ohm-GPU subsystem.

The engine keeps time in integer **picoseconds** so that the 30 GHz
optical clock, the 15 GHz electrical channel clock and the 1.2 GHz SM
clock can all be represented exactly.
"""

from repro.sim.audit import (
    Auditor,
    InvariantError,
    InvariantViolation,
    ValidatingEngine,
)
from repro.sim.engine import Engine, PS_PER_NS, PS_PER_US, freq_ghz_to_period_ps, ns, us
from repro.sim.records import Access, MemRequest, RequestKind
from repro.sim.stats import Histogram, LatencyStat, Stats

__all__ = [
    "Auditor",
    "InvariantError",
    "InvariantViolation",
    "ValidatingEngine",
    "Engine",
    "PS_PER_NS",
    "PS_PER_US",
    "freq_ghz_to_period_ps",
    "ns",
    "us",
    "Access",
    "MemRequest",
    "RequestKind",
    "Stats",
    "LatencyStat",
    "Histogram",
]
