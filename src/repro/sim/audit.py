"""Cross-layer invariant auditing (opt-in, zero-cost when disabled).

The simulator's counters feed every evaluation artifact — the Fig. 19
energy breakdown, tenant attribution, channel bandwidth splits — and a
silent accounting drift would be *fingerprint-stable*: the golden
regression tests freeze whatever the counters say, right or wrong.
This module is the independent witness.  An :class:`Auditor` installed
into a :class:`~repro.gpu.gpu.GpuModel` at construction checks
conservation laws that must hold **across layers**:

====================  =================================================
invariant prefix      what must hold
====================  =================================================
``engine.*``          event time never moves backwards; the heap drains
                      completely (no event stranded past the last warp)
``gpu.*``             memory requests issued by the warps == requests
                      retired by caches + memory (nothing lost, nothing
                      double-counted); latency samples == demand
                      requests; instructions retired by warps == the
                      SMs' issue counter; NoC bits == demand requests
                      x line size
``cache.*``           ``hits + misses == accesses`` per cache, and the
                      caches' own tallies == the SMs' hit counters
``channel.*``         bits offered to each port == bits its counters
                      account (bytes-in == bytes-out per transfer
                      window); windows are sane (no past start, no
                      empty occupancy); per-kind busy time == per-route
                      busy time
``dram.*``            the device counters reconcile with the per-bank
                      state machines; every activation is followed by a
                      column access or a bulk (swap) occupancy
``xpoint.*``          controller-layer ECC/buffer counters reconcile
                      with media-layer access counters (writes accepted
                      == writes persisted + still buffered)
``host.*``            PCIe transfers == faults + writebacks, page-sized
``hetero.*``          migrations == swaps (planar) / == DRAM-cache
                      misses (two-level); cache hits + misses == serves
``tenant.*``          per-tenant counters sum to the run totals
``energy.*``          ``EnergyBreakdown.total_j`` reconciles against an
                      independent re-derivation from raw counters
====================  =================================================

Zero-cost rule (DESIGN.md section 7): when no auditor is installed the
hot paths are untouched — the validating engine is a *subclass* chosen
at construction, channel instrumentation wraps ``transfer_window`` only
on audited models, and every other check runs once, after the run, on
the finished model.  There is no per-event ``if validate:`` anywhere.

Violations are structured :class:`InvariantViolation` records collected
on the auditor; a strict auditor (``RunConfig(validate=True)`` /
``--validate``) raises :class:`InvariantError` at the end of the run,
while the ``repro audit`` sweep collects them into a report instead
(see ``repro.harness.audit``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

# NOTE: this module sits below the channel layer in the import graph
# (repro.sim.__init__ pulls it in, and channel.base imports
# repro.sim.records), so RouteKind is imported lazily where needed.
from repro.sim.engine import Engine
from repro.sim.records import RequestKind

if TYPE_CHECKING:  # avoid the cycle: gpu.gpu imports this module
    from repro.gpu.gpu import GpuModel, RunResult


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One broken conservation law, with both sides of the ledger."""

    invariant: str  # e.g. "channel.bits_conserved"
    component: str  # e.g. "ochan3", "mc0.dram", "engine"
    message: str
    expected: Optional[float] = None
    actual: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "component": self.component,
            "message": self.message,
            "expected": self.expected,
            "actual": self.actual,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InvariantViolation":
        return cls(
            invariant=data["invariant"],
            component=data["component"],
            message=data["message"],
            expected=data.get("expected"),
            actual=data.get("actual"),
        )

    def __str__(self) -> str:
        detail = ""
        if self.expected is not None or self.actual is not None:
            detail = f" (expected {self.expected!r}, got {self.actual!r})"
        return f"[{self.invariant}] {self.component}: {self.message}{detail}"


class InvariantError(RuntimeError):
    """Raised by a strict auditor when any invariant is violated."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = list(violations)
        shown = "\n  ".join(str(v) for v in self.violations[:5])
        more = len(self.violations) - 5
        if more > 0:
            shown += f"\n  ... and {more} more"
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n  {shown}"
        )

    def __reduce__(self):
        # Default Exception pickling would replay __init__ with
        # ``args`` (the formatted message string), turning each
        # character into a "violation" after a worker-process
        # round-trip; reconstruct from the structured records instead.
        return (self.__class__, (self.violations,))


class _ChannelTally:
    """Independent per-port ledger kept by the transfer-window wrapper."""

    __slots__ = ("name", "port", "bits", "windows")

    def __init__(self, name: str, port) -> None:
        self.name = name
        self.port = port
        self.bits = 0
        self.windows = 0


class ValidatingEngine(Engine):
    """An :class:`Engine` that audits event-time monotonicity.

    Only instantiated on audited models; the production ``Engine.run``
    fast path is untouched.  The monotonicity check guards the heap
    discipline itself — ``at()`` already rejects scheduling into the
    past, so a violation here means the queue ordering broke.

    Every drain runs through the engine's guarded merged loop, so warp
    lane events are popped one at a time through the lane's slow-path
    step (never the fused drain) with the monotonicity check applied to
    generic and lane events alike — same ``(time, seq)`` order, same
    results, with the heap discipline watched on every pop.
    """

    __slots__ = ("auditor",)

    def __init__(self, auditor: "Auditor") -> None:
        super().__init__()
        self.auditor = auditor

    def run(
        self, until_ps: Optional[int] = None, max_events: Optional[int] = None
    ) -> None:
        self._run_guarded(until_ps, max_events, self.auditor.record)


class Auditor:
    """Collects invariant checks and violations for one simulation.

    Install by constructing the model with ``GpuModel(..., auditor=a)``;
    the model wires the validating engine and channel instrumentation at
    construction and calls :meth:`finish` after the run.  ``strict``
    auditors raise :class:`InvariantError` from ``finish`` when any
    check failed; non-strict auditors just accumulate (the ``repro
    audit`` sweep reads :attr:`violations` afterwards).
    """

    __slots__ = ("strict", "violations", "checks_run", "_tallies")

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0
        self._tallies: Dict[str, _ChannelTally] = {}

    # -- recording ------------------------------------------------------

    def record(
        self,
        invariant: str,
        component: str,
        message: str,
        expected: Optional[float] = None,
        actual: Optional[float] = None,
    ) -> None:
        """Record a violation unconditionally."""
        self.violations.append(
            InvariantViolation(invariant, component, message, expected, actual)
        )

    def check(
        self,
        invariant: str,
        component: str,
        ok: bool,
        message: str,
        expected: Optional[float] = None,
        actual: Optional[float] = None,
    ) -> bool:
        """Run one named check; a failure records a violation."""
        self.checks_run += 1
        if not ok:
            self.record(invariant, component, message, expected, actual)
        return ok

    def check_equal(
        self,
        invariant: str,
        component: str,
        expected: float,
        actual: float,
        message: str,
    ) -> bool:
        return self.check(
            invariant, component, expected == actual, message, expected, actual
        )

    def check_close(
        self,
        invariant: str,
        component: str,
        expected: float,
        actual: float,
        message: str,
        rel_tol: float = 1e-9,
    ) -> bool:
        ok = math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=1e-18)
        return self.check(invariant, component, ok, message, expected, actual)

    def raise_if_violations(self) -> None:
        if self.violations:
            raise InvariantError(self.violations)

    # -- construction-time instrumentation ------------------------------

    def instrument(self, model: "GpuModel") -> None:
        """Wrap every channel port of ``model`` with a bit ledger.

        Guarded handle installation at construction: the wrapper is only
        ever installed on audited models, so un-audited transfers never
        pay a branch.  Slices cache a bound ``transfer_window`` at their
        own construction, so each one rebinds after the wrap.
        """
        for s in model.memory.slices:
            chan = getattr(s, "chan", None)
            if chan is None:
                continue
            if chan.name not in self._tallies:
                self._wrap_channel(chan)
            s.refresh_channel_binding()
        # Workload-layer contract, checked before any event runs: a
        # malformed trace (misaligned arrays, negative gaps/addresses)
        # would otherwise surface as an obscure mid-run crash — or not
        # surface at all.  A strict auditor therefore raises *here*,
        # from model construction, with the structured records instead
        # of letting the run die on the symptom.
        self.checks_run += 1
        for w in model.warps:
            for problem in w.trace.well_formed():
                self.record(
                    "workload.trace_wellformed", f"warp{w.warp_id}", problem
                )
        if self.strict:
            self.raise_if_violations()

    def _wrap_channel(self, chan) -> None:
        tally = self._tallies[chan.name] = _ChannelTally(chan.name, chan)
        inner = chan.transfer_window
        record = self.record

        # Pure pass-through on the route/device arguments (so the
        # wrapper needs no RouteKind default of its own — see the
        # import note at the top of the module).
        def audited_transfer_window(
            now_ps: int, bits: int, kind: RequestKind, *args, **kwargs
        ) -> tuple:
            start, end = inner(now_ps, bits, kind, *args, **kwargs)
            tally.bits += bits
            tally.windows += 1
            if start < now_ps:
                record(
                    "channel.window_sane",
                    tally.name,
                    "transfer window starts before its request",
                    expected=now_ps,
                    actual=start,
                )
            if end <= start:
                record(
                    "channel.window_sane",
                    tally.name,
                    "transfer window has no occupancy",
                    expected=start + 1,
                    actual=end,
                )
            return start, end

        chan.transfer_window = audited_transfer_window

    # -- post-run checks ------------------------------------------------

    def finish(self, model: "GpuModel", result: "RunResult") -> None:
        """Run every post-run conservation check on the finished model."""
        c = result.counters
        self._check_engine(model)
        self._check_gpu(model, result, c)
        self._check_caches(model, c)
        self._check_channels(model, c)
        self._check_dram(model, c)
        self._check_xpoint(model, c)
        self._check_host(model, c)
        self._check_hetero(model, c)
        self._check_tenants(model, result, c)
        self._check_energy(model, result)
        if self.strict:
            self.raise_if_violations()

    def _check_engine(self, model: "GpuModel") -> None:
        # Monotonicity ran per event inside ValidatingEngine; count it
        # as one performed check over the whole run.
        self.checks_run += 1
        self.check_equal(
            "engine.heap_drain",
            "engine",
            0,
            model.engine.pending(),
            "events still queued after the run drained",
        )

    def _check_gpu(self, model: "GpuModel", result: "RunResult", c) -> None:
        ops_issued = sum(len(w.trace) for w in model.warps)
        retired = (
            c.get("gpu.l1_hits", 0.0)
            + c.get("gpu.l2_hits", 0.0)
            + c.get("mem.demand_requests", 0.0)
        )
        self.check_equal(
            "gpu.requests_conserved",
            "gpu",
            ops_issued,
            retired,
            "memory requests issued by warps != requests retired "
            "(L1 hits + L2 hits + demand requests)",
        )
        self.check_equal(
            "gpu.latency_samples",
            "gpu",
            c.get("mem.demand_requests", 0.0),
            result.demand_requests,
            "latency samples != demand-request counter",
        )
        self.check_equal(
            "gpu.instructions_conserved",
            "gpu",
            result.instructions,
            c.get("gpu.instructions", 0.0),
            "warp-retired instructions != SM issue counter",
        )
        self.check_equal(
            "gpu.trace_instructions",
            "gpu",
            sum(w.trace.total_instructions for w in model.warps),
            result.instructions,
            "instructions declared by the traces != instructions retired",
        )
        if "noc.bits" in c:
            line_bits = model.cfg.gpu.line_bytes * 8
            self.check_equal(
                "gpu.noc_bits",
                "noc",
                c.get("mem.demand_requests", 0.0) * line_bits,
                c["noc.bits"],
                "interconnect bits != demand requests x line size",
            )

    def _check_caches(self, model: "GpuModel", c) -> None:
        l1s = [sm.l1 for sm in model.sms if sm.l1 is not None]
        l2s = {id(sm.l2): sm.l2 for sm in model.sms if sm.l2 is not None}
        for cache in l1s + list(l2s.values()):
            st = cache.stats
            self.check_equal(
                "cache.access_split",
                cache.name,
                st.accesses,
                st.hits + st.misses,
                "hits + misses != accesses",
            )
        if l1s:
            self.check_equal(
                "cache.l1_accounting",
                "l1",
                sum(cache.stats.hits for cache in l1s),
                c.get("gpu.l1_hits", 0.0),
                "L1 caches' own hit tallies != the SMs' l1_hits counter",
            )
        if l2s:
            self.check_equal(
                "cache.l2_accounting",
                "l2",
                sum(cache.stats.hits for cache in l2s.values()),
                c.get("gpu.l2_hits", 0.0),
                "L2 caches' own hit tallies != the SMs' l2_hits counter",
            )
            if l1s:
                self.check_equal(
                    "cache.l2_demand_flow",
                    "l2",
                    sum(cache.stats.misses for cache in l1s),
                    sum(cache.stats.accesses for cache in l2s.values()),
                    "L1 misses != L2 accesses",
                )
            self.check_equal(
                "cache.memory_flow",
                "l2",
                sum(cache.stats.misses for cache in l2s.values()),
                c.get("mem.demand_requests", 0.0),
                "L2 misses != demand requests reaching memory",
            )

    def _check_channels(self, model: "GpuModel", c) -> None:
        for tally in self._tallies.values():
            name = tally.name
            # The key scheme is owned by the channel layer; the port
            # reads its own ledger back out of the counter snapshot.
            ledger = tally.port.accounting(c)
            self.check_equal(
                "channel.bits_conserved",
                name,
                tally.bits,
                ledger["bits"],
                "bits offered to the port != bits its counters account",
            )
            self.check_equal(
                "channel.windows_conserved",
                name,
                tally.windows,
                ledger["windows"],
                "transfer windows opened != transfers counted",
            )
            self.check_equal(
                "channel.busy_routes",
                name,
                ledger["kind_busy_ps"],
                ledger["route_busy_ps"],
                "per-kind busy time != per-route busy time",
            )

    def _check_dram(self, model: "GpuModel", c) -> None:
        for dram in self._devices(model, "dram"):
            name = dram.name
            banks = dram.banks
            self.check_equal(
                "dram.bank_accesses",
                name,
                sum(b.accesses for b in banks),
                c.get(f"{name}.accesses", 0.0),
                "device access counter != sum of per-bank accesses",
            )
            self.check_equal(
                "dram.bank_row_hits",
                name,
                sum(b.row_hits for b in banks),
                c.get(f"{name}.row_hits", 0.0),
                "device row-hit counter != sum of per-bank row hits",
            )
            # The device counter feeds the energy model and counts
            # *demand-path* activations; swap presets are tracked
            # separately on the banks (see dram/bank.py).
            self.check_equal(
                "dram.bank_activations",
                name,
                sum(b.activations - b.preset_activations for b in banks),
                c.get(f"{name}.activations", 0.0),
                "device activation counter != per-bank demand activations",
            )
            self.check_equal(
                "dram.access_split",
                name,
                c.get(f"{name}.accesses", 0.0),
                c.get(f"{name}.reads", 0.0) + c.get(f"{name}.writes", 0.0),
                "accesses != reads + writes",
            )
            self.check_equal(
                "dram.outcome_split",
                name,
                c.get(f"{name}.accesses", 0.0),
                c.get(f"{name}.row_hits", 0.0)
                + c.get(f"{name}.activations", 0.0),
                "accesses != row hits + activations",
            )
            for i, bank in enumerate(banks):
                if bank.activations > bank.accesses + bank.occupancies:
                    self.record(
                        "dram.activations_bounded",
                        f"{name}.bank{i}",
                        "more activations than column accesses + bulk "
                        "occupancies — an activation did no work",
                        expected=bank.accesses + bank.occupancies,
                        actual=bank.activations,
                    )
            self.checks_run += 1  # the per-bank bound, counted once

    def _check_xpoint(self, model: "GpuModel", c) -> None:
        for xp in self._devices(model, "xp"):
            name = xp.name
            media = f"{name}.media"
            self.check_equal(
                "xpoint.media_split",
                media,
                c.get(f"{media}.accesses", 0.0),
                c.get(f"{media}.reads", 0.0) + c.get(f"{media}.writes", 0.0),
                "media accesses != reads + writes",
            )
            # Writes: every accepted write was ECC-encoded; it is either
            # persisted to the media or still in the persistent write
            # buffer.  Start-Gap rotations add one media read + write.
            rotations = c.get(f"{name}.gap_rotations", 0.0)
            self.check_equal(
                "xpoint.write_conservation",
                name,
                c.get(f"{name}.ecc_encodes", 0.0)
                - xp.write_buffer_occupancy
                + rotations,
                c.get(f"{media}.writes", 0.0),
                "writes accepted - still buffered + rotations "
                "!= media writes",
            )
            self.check_equal(
                "xpoint.read_conservation",
                name,
                c.get(f"{name}.ecc_decodes", 0.0) + rotations,
                c.get(f"{media}.reads", 0.0),
                "ECC decodes + rotations != media reads",
            )
            check_startgap(self, name, xp.translator, rotations)

    def _check_host(self, model: "GpuModel", c) -> None:
        if "pcie.transfers" not in c:
            return
        self.check_equal(
            "host.pcie_transfers",
            "pcie",
            c.get("host.faults", 0.0) + c.get("host.writebacks", 0.0),
            c["pcie.transfers"],
            "PCIe transfers != page faults + dirty writebacks",
        )
        self.check_equal(
            "host.pcie_bytes",
            "pcie",
            c["pcie.transfers"] * model.cfg.hetero.page_bytes,
            c.get("pcie.bytes", 0.0),
            "PCIe bytes != transfers x page size",
        )

    def _check_hetero(self, model: "GpuModel", c) -> None:
        if "mem.swaps" in c or "mem.migrations" in c:
            if "mem.dram_cache_misses" in c:
                self.check_equal(
                    "hetero.migrations",
                    "mem",
                    c.get("mem.dram_cache_misses", 0.0),
                    c.get("mem.migrations", 0.0),
                    "two-level migrations != DRAM-cache misses",
                )
            else:
                self.check_equal(
                    "hetero.migrations",
                    "mem",
                    c.get("mem.swaps", 0.0),
                    c.get("mem.migrations", 0.0),
                    "planar migrations != page swaps",
                )
        if "mem.dram_cache_hits" in c or "mem.dram_cache_misses" in c:
            # Dirty L2 victims are written back through the memory
            # system and count as extra serves (the L2 is shared, so
            # deduplicate by object identity).
            l2s = {id(sm.l2): sm.l2 for sm in model.sms if sm.l2 is not None}
            writebacks = sum(l2.stats.writebacks for l2 in l2s.values())
            served = c.get("mem.demand_requests", 0.0) + writebacks
            self.check_equal(
                "hetero.dram_cache_split",
                "mem",
                served,
                c.get("mem.dram_cache_hits", 0.0)
                + c.get("mem.dram_cache_misses", 0.0),
                "DRAM-cache hits + misses != requests served",
            )

    def _check_tenants(self, model: "GpuModel", result: "RunResult", c) -> None:
        labelled = [w for w in model.warps if w.trace.tenant is not None]
        if not labelled:
            return
        tenants = sorted({w.trace.tenant for w in labelled})
        sums = {
            key: sum(c.get(f"tenant.{t}.{key}", 0.0) for t in tenants)
            for key in ("warps", "instructions", "accesses")
        }
        fully_labelled = len(labelled) == len(model.warps)
        totals = {
            "warps": len(model.warps),
            "instructions": result.instructions,
            "accesses": sum(len(w.trace) for w in model.warps),
        }
        for key, total in totals.items():
            if fully_labelled:
                self.check_equal(
                    f"tenant.{key}",
                    "tenant",
                    total,
                    sums[key],
                    f"per-tenant {key} do not sum to the run total",
                )
            else:
                self.check(
                    f"tenant.{key}",
                    "tenant",
                    sums[key] <= total,
                    f"per-tenant {key} exceed the run total",
                    expected=total,
                    actual=sums[key],
                )
        for t in tenants:
            finish = c.get(f"tenant.{t}.finish_ps", 0.0)
            self.check(
                "tenant.finish",
                f"tenant.{t}",
                0 < finish <= result.exec_time_ps,
                "tenant finish time outside the run window",
                expected=result.exec_time_ps,
                actual=finish,
            )

    def _check_energy(self, model: "GpuModel", result: "RunResult") -> None:
        # Imported lazily: energy.accounting imports gpu.gpu, which
        # imports this module.
        from repro.energy.accounting import EnergyModel

        cfg, platform = model.cfg, model.platform
        energy = EnergyModel(cfg)
        b = energy.breakdown(platform, result)
        c = result.counters
        for component, value in b.as_dict().items():
            self.check(
                "energy.nonnegative",
                component,
                value >= 0.0,
                "negative component energy",
                expected=0.0,
                actual=value,
            )
        # Independent re-derivation: exact per-component keys from the
        # live model objects, not the breakdown's name-pattern sums.  A
        # counter the breakdown's patterns miss (or double-match) shows
        # up here as a reconciliation failure.
        act = acc = reads = writes = signal_pj = mrr_pj = elec_pj = 0.0
        for dram in self._devices(model, "dram"):
            act += c.get(f"{dram.name}.activations", 0.0)
            acc += c.get(f"{dram.name}.accesses", 0.0)
        for xp in self._devices(model, "xp"):
            reads += c.get(f"{xp.name}.media.reads", 0.0)
            writes += c.get(f"{xp.name}.media.writes", 0.0)
        seen = set()
        for s in model.memory.slices:
            chan = getattr(s, "chan", None)
            if chan is None or chan.name in seen:
                continue
            seen.add(chan.name)
            pj = c.get(f"{chan.name}.energy_pj", 0.0)
            # Optical ports charge MRR tuning; electrical ports do not.
            if hasattr(chan, "_k_mrr"):
                signal_pj += pj
                mrr_pj += c.get(f"{chan.name}.mrr_tuning_pj", 0.0)
            else:
                elec_pj += pj
        expected = (
            energy.dram.dynamic_j(act, acc)
            + energy.dram.static_j(cfg.electrical.num_channels, result.exec_time_ps)
            + energy.xpoint.dynamic_j(reads, writes)
            + energy.optical.signalling_j(signal_pj, mrr_pj)
            + energy.optical.laser_j(platform.laser_scale, result.exec_time_ps)
            + elec_pj * 1e-12
        )
        self.check_close(
            "energy.total_reconciles",
            platform.name,
            expected,
            b.total_j,
            "EnergyBreakdown.total_j does not reconcile with the "
            "independent re-derivation from raw counters",
        )

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _devices(model: "GpuModel", attr: str):
        """Unique slice-owned devices (``dram`` / ``xp``), in MC order."""
        seen = set()
        for s in model.memory.slices:
            dev = getattr(s, attr, None)
            if dev is None or id(dev) in seen:
                continue
            seen.add(id(dev))
            yield dev


def check_startgap(auditor: Auditor, name: str, translator, rotations: float) -> None:
    """Start-Gap invariants for one :class:`RegionTranslator`.

    Shared between the post-run XPoint audit and the wear scenarios
    (which age translators outside a GPU run):

    * the sum of per-region gap moves equals the controller's
      ``gap_rotations`` counter (every rotation paid its media copy);
    * each region's ``start``/``gap`` registers reconcile with its move
      count in closed form — the gap's offset cycles through
      ``num_lines + 1`` slots and each completed cycle bumps ``start``;
    * every *exercised* region's logical→physical map is still a
      permutation that avoids the gap slot (translation stayed
      injective through any number of rotations).
    """
    auditor.check_equal(
        "xpoint.startgap_rotations",
        name,
        translator.total_gap_moves,
        rotations,
        "sum of per-region gap moves != gap_rotations counter",
    )
    for region, g in enumerate(translator.gaps):
        cycle = g.num_lines + 1
        ok = (
            g.gap == g.num_lines - (g.gap_moves % cycle)
            and g.start == (g.gap_moves // cycle) % g.num_lines
        )
        auditor.check(
            "xpoint.startgap_registers",
            f"{name}.region{region}",
            ok,
            "start/gap registers do not reconcile with the gap-move count",
            expected=g.gap_moves,
            actual=(g.start, g.gap),
        )
        if g.gap_moves:
            mapping = g.mapping()
            auditor.check(
                "xpoint.startgap_permutation",
                f"{name}.region{region}",
                len(set(mapping)) == g.num_lines and g.gap not in mapping,
                "logical->physical map is not a gap-avoiding permutation",
                expected=g.num_lines,
                actual=len(set(mapping)),
            )
