"""Event queue at the heart of the simulator.

Every subsystem (SMs, memory controllers, DRAM banks, the XPoint
controller, optical routes) schedules plain callables on a shared
:class:`Engine`.  Events at equal timestamps run in scheduling order,
which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

PS_PER_NS = 1_000
PS_PER_US = 1_000_000


def ns(value: float) -> int:
    """Convert nanoseconds to the engine's picosecond time base."""
    return int(round(value * PS_PER_NS))


def us(value: float) -> int:
    """Convert microseconds to the engine's picosecond time base."""
    return int(round(value * PS_PER_US))


def freq_ghz_to_period_ps(freq_ghz: float) -> int:
    """Clock period in picoseconds for a frequency given in GHz.

    >>> freq_ghz_to_period_ps(1.0)
    1000
    >>> freq_ghz_to_period_ps(30.0)
    33
    """
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return max(1, int(round(1_000.0 / freq_ghz)))


class Engine:
    """A deterministic discrete-event engine with integer time.

    >>> eng = Engine()
    >>> seen = []
    >>> eng.schedule(5, lambda: seen.append("b"))
    >>> eng.schedule(1, lambda: seen.append("a"))
    >>> eng.run()
    >>> seen
    ['a', 'b']
    """

    __slots__ = ("_queue", "_seq", "now", "events_processed")

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0

    def schedule(self, delay_ps: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay_ps`` picoseconds from the current time."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ps})")
        self.at(self.now + delay_ps, fn)

    def at(self, time_ps: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule at {time_ps} ps; current time is {self.now} ps"
            )
        heapq.heappush(self._queue, (time_ps, self._seq, fn))
        self._seq += 1

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        if not self._queue:
            return False
        time_ps, _, fn = heapq.heappop(self._queue)
        self.now = time_ps
        self.events_processed += 1
        fn()
        return True

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Args:
            until_ps: stop once simulated time passes this stamp (the
                event at ``until_ps`` itself still runs).
            max_events: hard cap on processed events, a guard against
                runaway feedback loops in misconfigured models.

        The common drain-everything call is the simulator's innermost
        loop, so it pops the heap directly with local bindings instead
        of paying a :meth:`step` call per event.
        """
        queue = self._queue
        pop = heapq.heappop
        if until_ps is None and max_events is None:
            count = self.events_processed
            try:
                while queue:
                    time_ps, _, fn = pop(queue)
                    self.now = time_ps
                    count += 1
                    fn()
            finally:
                self.events_processed = count
            return
        processed = 0
        while queue:
            if until_ps is not None and queue[0][0] > until_ps:
                break
            if max_events is not None and processed >= max_events:
                break
            time_ps, _, fn = pop(queue)
            self.now = time_ps
            self.events_processed += 1
            fn()
            processed += 1

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
