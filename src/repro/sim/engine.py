"""Event queue at the heart of the simulator.

Every subsystem (SMs, memory controllers, DRAM banks, the XPoint
controller, optical routes) schedules plain callables on a shared
:class:`Engine`.  Events at equal timestamps run in scheduling order,
which keeps runs fully deterministic.

Typed event lanes
-----------------

The engine keeps two event structures that drain as one timeline:

* the **generic heap** — ``(time_ps, seq, fn)`` tuples, one per
  scheduled callable.  Cold subsystems and ad-hoc callers use this; it
  is exactly the classic discrete-event queue.
* an optional **warp lane** — the dominant event class in a GPU run is
  a warp stepping its two-phase state machine (compute burst issued /
  memory completion), and those events carry no payload beyond *which
  warp* and *which phase*.  The lane stores each warp's single pending
  event in parallel ``array('q')`` columns (``time_ps``, ``seq``,
  ``phase``, indexed by warp) plus a heap of plain integers encoding
  ``(time_ps, seq, warp)``, so scheduling a warp event allocates no
  tuple and dispatching one calls no bound method: the fused drain
  (installed by :class:`repro.gpu.warp.WarpLane`) steps warps in a
  table-driven loop.

Both structures share the global sequence counter, so the merged drain
preserves the exact ``(time_ps, seq)`` order a single heap would have
produced — the golden ``RunResult`` fingerprints freeze that order.

Lane contract (for lane implementors, i.e. ``gpu/warp.py``):

* a warp has at most one pending lane event; its step schedules the
  successor via :meth:`Engine.lane_schedule` (or inlines the column
  writes inside a fused drain);
* ``step(warp, phase)`` is invoked with ``now`` already advanced and
  the event already popped (its phase column reset to ``LANE_IDLE``);
* a fused ``drain(limit_t, limit_s)`` must process lane events in
  ``(time, seq)`` order while their key is below the limit (or until
  the lane empties, when ``limit_t`` is ``None``), return as soon as
  the generic heap becomes non-empty past its limit, and leave ``now``,
  ``_seq`` and ``events_processed`` exactly as a per-event drain would
  have; step bodies must not schedule generic events mid-drain.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Callable, Optional

PS_PER_NS = 1_000
PS_PER_US = 1_000_000

#: Phase column value marking "no pending event" for a lane warp.
LANE_IDLE = -1

#: Lane key encoding: ``((time_ps << SEQ_BITS) | seq) << WARP_BITS | warp``.
#: Comparing keys compares ``(time, seq)`` first — warp id is payload.
LANE_SEQ_BITS = 40
LANE_SEQ_LIMIT = 1 << LANE_SEQ_BITS
LANE_SEQ_MASK = LANE_SEQ_LIMIT - 1
LANE_WARP_BITS = 20
LANE_WARP_LIMIT = 1 << LANE_WARP_BITS
LANE_WARP_MASK = LANE_WARP_LIMIT - 1
LANE_TIME_SHIFT = LANE_SEQ_BITS + LANE_WARP_BITS


def ns(value: float) -> int:
    """Convert nanoseconds to the engine's picosecond time base."""
    return int(round(value * PS_PER_NS))


def us(value: float) -> int:
    """Convert microseconds to the engine's picosecond time base."""
    return int(round(value * PS_PER_US))


def freq_ghz_to_period_ps(freq_ghz: float) -> int:
    """Clock period in picoseconds for a frequency given in GHz.

    >>> freq_ghz_to_period_ps(1.0)
    1000
    >>> freq_ghz_to_period_ps(30.0)
    33
    """
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return max(1, int(round(1_000.0 / freq_ghz)))


class Engine:
    """A deterministic discrete-event engine with integer time.

    >>> eng = Engine()
    >>> seen = []
    >>> eng.schedule(5, lambda: seen.append("b"))
    >>> eng.schedule(1, lambda: seen.append("a"))
    >>> eng.run()
    >>> seen
    ['a', 'b']
    """

    __slots__ = (
        "_queue",
        "_seq",
        "now",
        "events_processed",
        "_lane_heap",
        "_lane_time",
        "_lane_seq",
        "_lane_phase",
        "_lane_step",
        "_lane_drain",
    )

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0
        self._lane_heap: list[int] = []
        self._lane_time: Optional[array] = None
        self._lane_seq: Optional[array] = None
        self._lane_phase: Optional[array] = None
        self._lane_step: Optional[Callable[[int, int], None]] = None
        self._lane_drain: Optional[Callable[[], None]] = None

    # -- generic heap ---------------------------------------------------

    def schedule(self, delay_ps: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay_ps`` picoseconds from the current time."""
        if delay_ps < 0:
            raise ValueError(
                f"cannot schedule into the past: delay {delay_ps} ps from "
                f"current time {self.now} ps (requested {self.now + delay_ps} ps)"
            )
        self.at(self.now + delay_ps, fn)

    def at(self, time_ps: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule at {time_ps} ps: current time is "
                f"{self.now} ps (events may not run in the past)"
            )
        heapq.heappush(self._queue, (time_ps, self._seq, fn))
        self._seq += 1

    # -- warp lane ------------------------------------------------------

    def attach_warp_lane(
        self,
        num_warps: int,
        step: Callable[[int, int], None],
        drain: Optional[Callable[[], None]] = None,
    ) -> None:
        """Install the typed warp lane (see the module docstring).

        ``step(warp, phase)`` executes one lane event; the optional
        ``drain()`` is the fused bulk path used by the full-drain
        :meth:`run` (falling back to per-event ``step`` dispatch when
        absent).  The drain reads the generic heap head itself each
        iteration, so it needs no limit arguments — it runs lane
        events while they precede the generic head and returns.
        """
        if self._lane_step is not None:
            raise RuntimeError("a warp lane is already attached")
        if num_warps < 1:
            raise ValueError("a warp lane needs at least one warp")
        if num_warps >= LANE_WARP_LIMIT:
            raise ValueError(
                f"warp lane supports at most {LANE_WARP_LIMIT - 1} warps, "
                f"got {num_warps}"
            )
        self._lane_time = array("q", bytes(8 * num_warps))
        self._lane_seq = array("q", bytes(8 * num_warps))
        self._lane_phase = array("q", [LANE_IDLE]) * num_warps
        self._lane_step = step
        self._lane_drain = drain

    def lane_schedule(self, warp: int, time_ps: int, phase: int) -> None:
        """Schedule warp ``warp``'s next lane event at ``time_ps``.

        Exactly one event may be pending per warp; the event occupies
        the warp's column slots and one integer heap entry — no tuple,
        no callable.
        """
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule at {time_ps} ps: current time is "
                f"{self.now} ps (events may not run in the past)"
            )
        if phase < 0:
            raise ValueError(f"lane phase must be non-negative, got {phase}")
        if self._lane_phase[warp] != LANE_IDLE:
            raise RuntimeError(f"warp {warp} already has a pending lane event")
        seq = self._seq
        if seq >= LANE_SEQ_LIMIT:
            raise OverflowError("event sequence space exhausted")
        self._seq = seq + 1
        self._lane_time[warp] = time_ps
        self._lane_seq[warp] = seq
        self._lane_phase[warp] = phase
        heapq.heappush(
            self._lane_heap,
            ((time_ps << LANE_SEQ_BITS) | seq) << LANE_WARP_BITS | warp,
        )

    def lane_pending(self) -> int:
        """Number of pending warp-lane events."""
        return len(self._lane_heap)

    def _lane_step_min(self) -> None:
        """Pop and execute the lane's minimum event (slow/guarded path)."""
        key = heapq.heappop(self._lane_heap)
        warp = key & LANE_WARP_MASK
        self.now = key >> LANE_TIME_SHIFT
        self.events_processed += 1
        phase = self._lane_phase[warp]
        self._lane_phase[warp] = LANE_IDLE
        self._lane_step(warp, phase)

    # -- inspection -----------------------------------------------------

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        lane = self._lane_heap
        queue = self._queue
        if lane and queue:
            return min(lane[0] >> LANE_TIME_SHIFT, queue[0][0])
        if lane:
            return lane[0] >> LANE_TIME_SHIFT
        if queue:
            return queue[0][0]
        return None

    def pending(self) -> int:
        """Number of events still queued (generic heap + warp lane)."""
        return len(self._queue) + len(self._lane_heap)

    def _lane_head_wins(self) -> bool:
        """Whether the lane's head precedes the generic head.

        Callers guarantee at least one of the two is non-empty.
        """
        lane = self._lane_heap
        if not lane:
            return False
        queue = self._queue
        if not queue:
            return True
        key = lane[0]
        lt = key >> LANE_TIME_SHIFT
        gt = queue[0][0]
        if lt != gt:
            return lt < gt
        return (key >> LANE_WARP_BITS) & LANE_SEQ_MASK < queue[0][1]

    # -- draining -------------------------------------------------------

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        if not self._queue and not self._lane_heap:
            return False
        if self._lane_head_wins():
            self._lane_step_min()
            return True
        time_ps, _, fn = heapq.heappop(self._queue)
        self.now = time_ps
        self.events_processed += 1
        fn()
        return True

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue (generic heap and warp lane, merged).

        Args:
            until_ps: stop once simulated time passes this stamp (the
                event at ``until_ps`` itself still runs).
            max_events: hard cap on processed events, a guard against
                runaway feedback loops in misconfigured models.

        The common drain-everything call is the simulator's innermost
        loop: with no warp lane it pops the heap directly with local
        bindings, and with one it hands runs of consecutive lane events
        to the lane's fused drain.
        """
        if until_ps is not None or max_events is not None:
            self._run_guarded(until_ps, max_events)
            return
        if self._lane_step is None:
            # Classic single-heap fast path (no lane ever attached).
            queue = self._queue
            pop = heapq.heappop
            count = self.events_processed
            try:
                while queue:
                    time_ps, _, fn = pop(queue)
                    self.now = time_ps
                    count += 1
                    fn()
            finally:
                self.events_processed = count
            return
        self._run_fused()

    def _run_fused(self) -> None:
        """Full drain with a warp lane attached: merge lane and heap."""
        queue = self._queue
        lane = self._lane_heap
        drain = self._lane_drain
        pop = heapq.heappop
        while True:
            if lane:
                if queue:
                    key = lane[0]
                    head = queue[0]
                    lt = key >> LANE_TIME_SHIFT
                    gt = head[0]
                    if lt < gt or (
                        lt == gt
                        and (key >> LANE_WARP_BITS) & LANE_SEQ_MASK < head[1]
                    ):
                        if drain is not None:
                            drain()
                        else:
                            self._lane_step_min()
                    else:
                        time_ps, _, fn = pop(queue)
                        self.now = time_ps
                        self.events_processed += 1
                        fn()
                else:
                    if drain is not None:
                        drain()
                    else:
                        self._lane_step_min()
            elif queue:
                time_ps, _, fn = pop(queue)
                self.now = time_ps
                self.events_processed += 1
                fn()
            else:
                return

    def _run_guarded(
        self,
        until_ps: Optional[int],
        max_events: Optional[int],
        record: Optional[Callable[..., None]] = None,
    ) -> None:
        """Per-event merged drain honouring ``until_ps``/``max_events``.

        ``record`` is the audit hook: :class:`ValidatingEngine` passes
        its auditor's violation recorder so event-time monotonicity is
        checked on every pop, lane events included.
        """
        queue = self._queue
        lane = self._lane_heap
        pop = heapq.heappop
        processed = 0
        while queue or lane:
            if self._lane_head_wins():
                head_time = lane[0] >> LANE_TIME_SHIFT
                from_lane = True
            else:
                head_time = queue[0][0]
                from_lane = False
            if until_ps is not None and head_time > until_ps:
                break
            if max_events is not None and processed >= max_events:
                break
            if record is not None and head_time < self.now:
                record(
                    "engine.monotonic_time",
                    "engine",
                    "event popped before current time",
                    expected=self.now,
                    actual=head_time,
                )
            processed += 1
            if from_lane:
                self._lane_step_min()
            else:
                time_ps, _, fn = pop(queue)
                self.now = time_ps
                self.events_processed += 1
                fn()
