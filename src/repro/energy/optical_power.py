"""Optical-network energy: laser wall power plus per-bit MRR tuning and
signalling energy (Table I's optical power model).

The laser runs for the whole execution at a platform-dependent scale
(2x for Auto-rw/Ohm-WOM, 4x for Ohm-BW — Section VI), which is why the
dual-route platforms pay more network energy than Ohm-base (Fig. 19)
even though they move the same bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import OpticalChannelConfig


@dataclass(frozen=True)
class OpticalEnergyModel:
    cfg: OpticalChannelConfig

    def laser_j(self, laser_scale: float, exec_time_ps: float) -> float:
        watts = (
            self.cfg.laser_power_mw
            * 1e-3
            * laser_scale
            * self.cfg.channel_width_bits
            * self.cfg.num_waveguides
        )
        return watts * exec_time_ps * 1e-12

    def signalling_j(self, channel_energy_pj: float, tuning_pj: float) -> float:
        return (channel_energy_pj + tuning_pj) * 1e-12
