"""Energy accounting for Fig. 19: per-event DRAM/XPoint energy, optical
laser + MRR tuning power, and electrical-lane energy."""

from repro.energy.accounting import EnergyBreakdown, EnergyModel
from repro.energy.dram_power import DramPowerModel
from repro.energy.optical_power import OpticalEnergyModel
from repro.energy.xpoint_power import XPointPowerModel

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "DramPowerModel",
    "XPointPowerModel",
    "OpticalEnergyModel",
]
