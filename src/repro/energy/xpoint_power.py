"""XPoint energy model from Optane DC PMM measurements [28].

Writes cost ~3x reads on the media; per-line energies are an order of
magnitude above DRAM column accesses, matching the measured average and
burst power of the device.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class XPointPowerModel:
    """Energy constants per media line access."""

    read_nj: float = 3.0
    write_nj: float = 9.0

    def dynamic_j(self, reads: float, writes: float) -> float:
        return (reads * self.read_nj + writes * self.write_nj) * 1e-9
