"""Empirical DRAM power model (after GPUWattch [37]).

Per-event energies for activations and column accesses plus a static
(background + refresh) power term.  The static power constant is scaled
to the simulator's reduced capacities so the Fig. 19 static/dynamic
proportions match the paper's full-size system.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramPowerModel:
    """Energy constants for one DRAM device."""

    activate_nj: float = 2.0  # row activate + precharge pair
    access_nj: float = 1.0  # one line column read/write + I/O
    # Background power per device, scaled to the reduced-capacity model.
    static_w_per_device: float = 0.05

    def dynamic_j(self, activations: float, accesses: float) -> float:
        return (activations * self.activate_nj + accesses * self.access_nj) * 1e-9

    def static_j(self, num_devices: int, exec_time_ps: float) -> float:
        return self.static_w_per_device * num_devices * exec_time_ps * 1e-12
