"""Turns a RunResult's counters into the Fig. 19 energy breakdown."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import SystemConfig
from repro.core.platforms import Platform
from repro.energy.dram_power import DramPowerModel
from repro.energy.optical_power import OpticalEnergyModel
from repro.energy.xpoint_power import XPointPowerModel
from repro.gpu.gpu import RunResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per component — the stacked bars of Fig. 19."""

    xpoint_j: float
    dram_dynamic_j: float
    dram_static_j: float
    optical_j: float
    electrical_j: float

    @property
    def total_j(self) -> float:
        return (
            self.xpoint_j
            + self.dram_dynamic_j
            + self.dram_static_j
            + self.optical_j
            + self.electrical_j
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "XPoint": self.xpoint_j,
            "DRAM dynamic": self.dram_dynamic_j,
            "DRAM static": self.dram_static_j,
            "Opti-network": self.optical_j,
            "Elec-channel": self.electrical_j,
        }


class EnergyModel:
    """Aggregates counters from one run into component energies."""

    def __init__(
        self,
        cfg: SystemConfig,
        dram: DramPowerModel | None = None,
        xpoint: XPointPowerModel | None = None,
    ) -> None:
        self.cfg = cfg
        self.dram = dram or DramPowerModel()
        self.xpoint = xpoint or XPointPowerModel()
        self.optical = OpticalEnergyModel(cfg.optical)

    @staticmethod
    def _sum(counters: Dict[str, float], suffix: str) -> float:
        return sum(v for k, v in counters.items() if k.endswith(suffix))

    def breakdown(self, platform: Platform, result: RunResult) -> EnergyBreakdown:
        c = result.counters
        dram_dyn = self.dram.dynamic_j(
            self._sum(c, ".dram.activations"), self._sum(c, ".dram.accesses")
        )
        dram_static = self.dram.static_j(
            self.cfg.electrical.num_channels, result.exec_time_ps
        )
        xp = self.xpoint.dynamic_j(
            self._sum(c, ".media.reads"), self._sum(c, ".media.writes")
        )
        # Both channel families are accounted unconditionally from
        # whichever counters the run actually produced.  Branching on
        # ``platform.uses_optical`` silently dropped the electrical side
        # on optical platforms (and vice versa) for any run whose
        # memory system mixes or renames ports — the audit layer's
        # energy reconciliation (sim/audit.py) exists to catch exactly
        # that class of drift.  The laser term is gated by the
        # platform's ``laser_scale`` (0 on electrical platforms), not
        # by which counters are read.
        signalling = self.optical.signalling_j(
            sum(v for k, v in c.items() if k.startswith("ochan") and k.endswith(".energy_pj")),
            self._sum(c, ".mrr_tuning_pj"),
        )
        laser = self.optical.laser_j(platform.laser_scale, result.exec_time_ps)
        optical = signalling + laser
        electrical = (
            sum(v for k, v in c.items() if k.startswith("echan") and k.endswith(".energy_pj"))
            * 1e-12
        )
        return EnergyBreakdown(
            xpoint_j=xp,
            dram_dynamic_j=dram_dyn,
            dram_static_j=dram_static,
            optical_j=optical,
            electrical_j=electrical,
        )
