"""Migration-function capability flags distinguishing the platforms.

The evaluated GPU platforms (Section VI) differ only in *which* of the
new memory functions their optical hardware supports and whether dual
routes come from WOM coding (bandwidth penalty) or from half-coupled
MRR transmitters (extra laser power).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FunctionKind(enum.Enum):
    """The three migration-offload functions of Section IV-B."""

    AUTO_READ_WRITE = "auto_rw"
    SWAP = "swap"
    REVERSE_WRITE = "reverse_write"


@dataclass(frozen=True)
class MigrationCaps:
    """What the platform's memory system can do.

    Attributes:
        auto_rw: XPoint controller snarfs MC<->DRAM transfers, so a
            DRAM->XPoint copy costs one channel transfer instead of two.
        swap: the XPoint controller's DDR sequence generator runs whole
            page swaps over the dual routes after a single SWAP-CMD.
        reverse_write: on a DRAM-cache miss, XPoint streams the fill to
            DRAM over the memory route while the MC snarfs the same data
            off the channel for the demand response.
        wom_coded: dual routes ride WOM coding — the data route drops to
            2/3 effective bandwidth while a swap is in flight (Ohm-WOM);
            ``False`` with dual routes means half-coupled transmitters
            carry the second stream at full width (Ohm-BW).
    """

    auto_rw: bool = False
    swap: bool = False
    reverse_write: bool = False
    wom_coded: bool = False

    @property
    def dual_routes(self) -> bool:
        """Any function implies the dual-route optical hardware."""
        return self.auto_rw or self.swap or self.reverse_write

    @property
    def laser_scale(self) -> float:
        """Laser power multiplier required for reliable sensing
        (Section VI: 2x for Auto-rw/Ohm-WOM, 4x for Ohm-BW)."""
        if not self.dual_routes:
            return 1.0
        if self.swap and not self.wom_coded:
            return 4.0
        return 2.0

    def supports(self, fn: FunctionKind) -> bool:
        return {
            FunctionKind.AUTO_READ_WRITE: self.auto_rw,
            FunctionKind.SWAP: self.swap,
            FunctionKind.REVERSE_WRITE: self.reverse_write,
        }[fn]


# Capability sets of the evaluated platforms.
CAPS_NONE = MigrationCaps()
CAPS_AUTO_RW = MigrationCaps(auto_rw=True)
CAPS_WOM = MigrationCaps(auto_rw=True, swap=True, reverse_write=True, wom_coded=True)
CAPS_BW = MigrationCaps(auto_rw=True, swap=True, reverse_write=True, wom_coded=False)
