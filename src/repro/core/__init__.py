"""Ohm-GPU's primary contribution (Sections IV and V).

This package orchestrates the substrates into the seven evaluated
platforms: the migration functions (auto-read/write, swap,
reverse-write), the dual-route usage policy, the revised memory
controller with conflict detection, and the platform builders.
"""

from repro.core.functions import FunctionKind, MigrationCaps
from repro.core.memsystem import MemorySystem
from repro.core.platforms import PLATFORMS, Platform, build_memory_system

__all__ = [
    "MigrationCaps",
    "FunctionKind",
    "MemorySystem",
    "Platform",
    "PLATFORMS",
    "build_memory_system",
]
