"""Per-memory-controller slices of the Ohm memory system.

A GPU has six memory controllers (Table I); each owns one virtual
channel, one DRAM device and one XPoint device (with its logic-layer
controller).  Addresses are page-interleaved across slices by
:class:`repro.core.memsystem.MemorySystem`.

Each slice variant implements ``serve(addr, is_write, now_ps) -> int``
returning the demand request's completion time, reserving every
resource (channel routes, DRAM banks, XPoint buffers) on the shared
timeline.  Migration work triggered by a request reserves resources in
the future without blocking the caller — *how much* of it lands on the
data route is exactly what distinguishes the platforms.
"""

from __future__ import annotations

from typing import Optional

from repro.channel.base import ChannelPort, RouteKind
from repro.config import SystemConfig
from repro.core.functions import MigrationCaps
from repro.core.handshake import DdrMonitor, DdrSequenceGenerator
from repro.dram.device import DramDevice
from repro.hetero.hotness import HotnessTracker
from repro.hetero.planar import PlanarMapper
from repro.hetero.two_level import DramCacheDirectory
from repro.hoststorage.pcie import HostLink
from repro.sim.records import RequestKind
from repro.sim.stats import Stats
from repro.xpoint.controller import XPointController

CMD_BITS = 64  # command + address on the channel
DEVICE_DRAM = 0  # demux target ids on the virtual channel
DEVICE_XPOINT = 1


class SliceBase:
    """Shared plumbing: channel helpers and DRAM streaming occupancy.

    ``_cmd``/``_data`` ride :meth:`ChannelPort.transfer_window`, the
    allocation-free primitive (a ``(start, end)`` tuple, no
    ``TransferResult``) — these run two-plus times per demand request.
    """

    def __init__(self, cfg: SystemConfig, chan: ChannelPort, stats: Stats, name: str) -> None:
        self.cfg = cfg
        self.chan = chan
        self.stats = stats
        self.name = name
        self.line_bits = cfg.gpu.line_bytes * 8
        self.page_bits = cfg.hetero.page_bytes * 8
        self.lines_per_page = cfg.hetero.page_bytes // cfg.gpu.line_bytes
        self._window = chan.transfer_window
        self._page_occupancy_ps: Optional[int] = None

    def refresh_channel_binding(self) -> None:
        """Re-resolve the cached ``transfer_window`` binding.

        The audit layer wraps a port's ``transfer_window`` *after* slice
        construction; anything that replaces that method must call this
        so the slice's pre-bound hot-path handle sees the wrapper.
        """
        self._window = self.chan.transfer_window

    # -- channel helpers -----------------------------------------------

    def _cmd(self, now: int, kind: RequestKind, device: int) -> int:
        return self._window(now, CMD_BITS, kind, RouteKind.DATA, device)[1]

    def _data(
        self,
        now: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> int:
        return self._window(now, bits, kind, route, device)[1]

    def _dram_page_occupancy_ps(self) -> int:
        """Streaming page read/write: activate + first CAS + pipelined
        line bursts at the channel rate.  Constant per slice, so it is
        computed once and cached."""
        if self._page_occupancy_ps is None:
            line_burst = max(1, int(round(self.line_bits / self.chan.bits_per_ps)))
            t = self._dram_timing()
            self._page_occupancy_ps = (
                t.t_rcd_ps + t.t_cl_ps + self.lines_per_page * line_burst
            )
        return self._page_occupancy_ps

    def _dram_timing(self):
        raise NotImplementedError

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        raise NotImplementedError


class DramOnlySlice(SliceBase):
    """Oracle: a DRAM device big enough that nothing ever migrates."""

    def __init__(
        self,
        cfg: SystemConfig,
        chan: ChannelPort,
        dram: DramDevice,
        stats: Stats,
        name: str,
    ) -> None:
        super().__init__(cfg, chan, stats, name)
        self.dram = dram

    def _dram_timing(self):
        return self.dram.timing

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        window = self._window
        t = window(now_ps, CMD_BITS, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]
        if is_write:
            # Writes put the data on the channel first; the column write
            # happens once it lands.
            t = window(t, self.line_bits, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]
            return self.dram.access(addr, True, t)
        t = self.dram.access(addr, False, t)
        return window(t, self.line_bits, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]


class OriginSlice(DramOnlySlice):
    """Origin: small DRAM; non-resident pages fault to the host.

    Page residency uses LRU over the slice's DRAM page frames.  A fault
    costs host latency + a PCIe page transfer + writing the page into
    DRAM through the memory channel (the DMA traffic of Fig. 3b).
    """

    def __init__(
        self,
        cfg: SystemConfig,
        chan: ChannelPort,
        dram: DramDevice,
        host: HostLink,
        stats: Stats,
        name: str,
    ) -> None:
        super().__init__(cfg, chan, dram, stats, name)
        self.host = host
        self.page_bytes = cfg.hetero.page_bytes
        self.num_frames = max(1, dram.capacity_bytes // self.page_bytes)
        self._resident: dict[int, list[int]] = {}  # page -> [tick, dirty]
        self._tick = 0
        self._c_faults = stats.counter("host.faults")
        self._c_writebacks = stats.counter("host.writebacks")
        self._c_dma_time = stats.counter("host.dma_time_ps")

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        page = addr // self.page_bytes
        self._tick += 1
        ready = now_ps
        entry = self._resident.get(page)
        if entry is not None:
            entry[0] = self._tick
        elif len(self._resident) < self.num_frames:
            # Free frames left: the page was staged before kernel launch
            # (bulk host->GPU copy ahead of time), no demand fault.
            self._resident[page] = [self._tick, False]
        else:
            ready = self._fault(page, now_ps)
        if is_write:
            self._resident[page][1] = True
        return super().serve(addr, is_write, ready)

    def _fault(self, page: int, now_ps: int) -> int:
        self._c_faults.add(1)
        if len(self._resident) >= self.num_frames:
            victim = min(self._resident, key=lambda p: self._resident[p][0])
            _, dirty = self._resident.pop(victim)
            if dirty:
                # Dirty victim: write the page back to the host first.
                self._c_writebacks.add(1)
                now_ps = self.host.transfer(now_ps, self.page_bytes)
        self._resident[page] = [self._tick, False]
        # Host-side latency + PCIe transfer of the page.
        arrive = self.host.transfer(now_ps, self.page_bytes)
        # DMA the page into DRAM through the memory channel.
        self.dram.occupy_bank(page * self.page_bytes, arrive, self._dram_page_occupancy_ps())
        done = self._data(
            arrive, self.page_bits, RequestKind.HOST_DMA, device=DEVICE_DRAM
        )
        self._c_dma_time.add(done - arrive)
        return done


class HeteroSliceBase(SliceBase):
    """Shared parts of the planar and two-level hetero slices."""

    def __init__(
        self,
        cfg: SystemConfig,
        chan: ChannelPort,
        dram: DramDevice,
        xp: XPointController,
        caps: MigrationCaps,
        stats: Stats,
        name: str,
    ) -> None:
        super().__init__(cfg, chan, stats, name)
        self.dram = dram
        self.xp = xp
        self.caps = caps
        self.seq_gen = DdrSequenceGenerator()
        self.ddr_monitor = DdrMonitor()

    def _dram_timing(self):
        return self.dram.timing

    # -- device-side bulk helpers --------------------------------------

    def _xp_page_read(self, xp_addr: int, now: int) -> int:
        t = now
        line = self.cfg.gpu.line_bytes
        for i in range(self.lines_per_page):
            t = max(t, self.xp.read(xp_addr + i * line, now))
        return t

    def _xp_page_write(self, xp_addr: int, now: int) -> int:
        t = now
        line = self.cfg.gpu.line_bytes
        for i in range(self.lines_per_page):
            t = max(t, self.xp.write(xp_addr + i * line, now))
        return t


class PlanarSlice(HeteroSliceBase):
    """Planar memory mode (Fig. 7a) with per-platform swap execution."""

    def __init__(self, cfg, chan, dram, xp, caps, stats, name) -> None:
        super().__init__(cfg, chan, dram, xp, caps, stats, name)
        page = cfg.hetero.page_bytes
        num_groups = max(1, dram.capacity_bytes // page)
        slots = cfg.hetero.dram_to_xpoint_ratio + 1
        self.mapper = PlanarMapper(num_groups, slots)
        self.hotness = HotnessTracker(
            cfg.hetero.hot_threshold, cfg.hetero.hotness_decay_accesses
        )
        self.page_bytes = page
        self._c_migrations = stats.counter("mem.migrations")
        self._c_swaps = stats.counter("mem.swaps")

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        page, offset = divmod(addr, self.page_bytes)
        place = self.mapper.lookup(page)
        window = self._window
        if place.in_dram:
            dram_addr = place.device_page * self.page_bytes + offset
            t = window(now_ps, CMD_BITS, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]
            if is_write:
                t = window(t, self.line_bits, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]
                return self.dram.access(dram_addr, True, t)
            t = self.dram.access(dram_addr, False, t)
            return window(t, self.line_bits, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]
        # XPoint access path.
        xp_addr = place.device_page * self.page_bytes + offset
        t = window(now_ps, CMD_BITS, RequestKind.DEMAND, RouteKind.DATA, DEVICE_XPOINT)[1]
        if is_write:
            # Data rides the channel, then lands in the persistent write
            # buffer (DDR-T posts the write; media persistence is async).
            done = window(t, self.line_bits, RequestKind.DEMAND, RouteKind.DATA, DEVICE_XPOINT)[1]
            self.xp.write(xp_addr, done)
        else:
            t = self.xp.read(xp_addr, t)
            done = window(t, self.line_bits, RequestKind.DEMAND, RouteKind.DATA, DEVICE_XPOINT)[1]
        # Hot-page detection happens on XPoint traffic only.
        if self.hotness.record((place.group, place.slot)):
            self._migrate(page, done)
            self.hotness.reset((place.group, place.slot))
        return done

    # -- migration ------------------------------------------------------

    def _migrate(self, page: int, now_ps: int) -> None:
        plan = self.mapper.plan_swap(page)
        if plan is None:
            return
        self._c_migrations.add(1)
        self._c_swaps.add(1)
        dram_addr = plan.dram_page * self.page_bytes
        xp_addr = plan.xpoint_page * self.page_bytes
        if self.caps.swap:
            self._migrate_swap_function(dram_addr, xp_addr, now_ps)
        else:
            self._migrate_controller_copy(dram_addr, xp_addr, now_ps)
        self.mapper.commit_swap(plan)

    def _migrate_controller_copy(self, dram_addr: int, xp_addr: int, now: int) -> None:
        """Baseline: the MC copies everything through its buffer; every
        leg occupies the shared data route (Fig. 7a step 6 problem)."""
        occupancy = self._dram_page_occupancy_ps()
        # Leg 1: read the DRAM page to the MC buffer.
        start, dev_done = self.dram.occupy_bank(dram_addr, now, occupancy)
        t = self._data(dev_done, self.page_bits, RequestKind.MIGRATION, device=DEVICE_DRAM)
        if self.caps.auto_rw:
            # Auto-read/write: XPoint snarfed leg 1 off the waveguide, so
            # the MC->XPoint transfer disappears (Fig. 9a).
            for i in range(self.lines_per_page):
                self.xp.snarf_write(xp_addr + i * self.cfg.gpu.line_bytes, t)
        else:
            t = self._data(t, self.page_bits, RequestKind.MIGRATION, device=DEVICE_XPOINT)
            self._xp_page_write(xp_addr, t)
        # Legs 3-4: XPoint page to DRAM (no snarf possible: DRAM has no
        # controller to perform it — Section IV-B).
        t2 = self._xp_page_read(xp_addr, now)
        t2 = self._data(t2, self.page_bits, RequestKind.MIGRATION, device=DEVICE_XPOINT)
        t2 = self._data(t2, self.page_bits, RequestKind.MIGRATION, device=DEVICE_DRAM)
        self.dram.occupy_bank(dram_addr, t2, occupancy)

    def _migrate_swap_function(self, dram_addr: int, xp_addr: int, now: int) -> None:
        """SWAP-CMD path (Fig. 10a/11): the XPoint controller drives the
        whole exchange over the memory route; the data route only
        carries the command and completion signals."""
        # Step 1: MC presets the target DRAM bank to a stable state.
        bank_ready = self.dram.activate_for_swap(dram_addr, now)
        self.seq_gen.preset(dram_addr)
        # Step 2: SWAP-CMD with DRAM/XPoint addresses and size rides the
        # data route (it is tiny: metadata only).
        t = self._data(bank_ready, CMD_BITS * 2, RequestKind.MIGRATION, device=DEVICE_XPOINT)
        t += self.seq_gen.start(dram_addr)
        # Steps 3-4: DDR sequence generator moves both pages over the
        # memory route; the DRAM bank is occupied, the data route is not.
        occupancy = self._dram_page_occupancy_ps()
        _, bank_done = self.dram.occupy_bank(dram_addr, t, 2 * occupancy)
        leg1 = self._data(t, self.page_bits, RequestKind.MIGRATION, RouteKind.MEMORY, DEVICE_XPOINT)
        self._xp_page_write(xp_addr + 0, leg1)
        leg2_src = self._xp_page_read(xp_addr, t)
        leg2 = self._data(
            max(leg1, leg2_src), self.page_bits, RequestKind.MIGRATION, RouteKind.MEMORY, DEVICE_DRAM
        )
        end = max(bank_done, leg2)
        if self.caps.wom_coded and hasattr(self.chan, "set_wom_window"):
            # WOM coding: demand traffic on the data route runs at 2/3
            # width while the swap shares the light (Section V-B).
            self.chan.set_wom_window(now, end - t)
        # Steps 5-6: ready + confirm ride the DDR-T side band (they are
        # single-cycle signals, not data-route occupancies).
        self.seq_gen.finish()
        self.seq_gen.confirm()


class TwoLevelSlice(HeteroSliceBase):
    """Two-level memory mode (Fig. 7b): DRAM as a direct-mapped cache."""

    def __init__(self, cfg, chan, dram, xp, caps, stats, name) -> None:
        super().__init__(cfg, chan, dram, xp, caps, stats, name)
        self.num_sets = max(1, dram.capacity_bytes // cfg.gpu.line_bytes)
        self.directory = DramCacheDirectory(self.num_sets)
        self.line_bytes = cfg.gpu.line_bytes
        self._c_hits = stats.counter("mem.dram_cache_hits")
        self._c_misses = stats.counter("mem.dram_cache_misses")
        self._c_migrations = stats.counter("mem.migrations")

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        line_index = addr // self.line_bytes
        lookup = self.directory.lookup(line_index)
        set_addr = lookup.set_index * self.line_bytes
        window = self._window
        # Tag check and data fetch are ONE DRAM access: the metadata
        # lives in the line's ECC region (Section III-B).
        t = window(now_ps, CMD_BITS, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]
        t = self.dram.access(set_addr, False, t)
        t = window(t, self.line_bits, RequestKind.DEMAND, RouteKind.DATA, DEVICE_DRAM)[1]
        if lookup.hit:
            self._c_hits.add(1)
            if is_write:
                self.directory.mark_dirty(line_index)
                t = self.dram.access(set_addr, True, t)
            return t
        self._c_misses.add(1)
        return self._miss(line_index, lookup, set_addr, is_write, t)

    def _miss(self, line_index, lookup, set_addr, is_write, now: int) -> int:
        xp_addr = line_index * self.line_bytes
        self._c_migrations.add(1)
        # --- eviction of the victim line ---
        if lookup.victim_valid and lookup.victim_dirty:
            victim_addr = self.directory.victim_line_index(lookup) * self.line_bytes
            if self.caps.auto_rw:
                # The XPoint controller snarfed the tag-check read off
                # the waveguide and owns the eviction (Fig. 9b).
                self.xp.snarf_write(victim_addr, now)
            else:
                t = self._data(now, self.line_bits, RequestKind.MIGRATION, device=DEVICE_XPOINT)
                self.xp.write(victim_addr, t)
        # --- fill from XPoint ---
        t = self._cmd(now, RequestKind.DEMAND, DEVICE_XPOINT)
        t = self.xp.read(xp_addr, t)
        # Demand-critical transfer: XPoint -> memory controller.
        t = self._data(t, self.line_bits, RequestKind.DEMAND, device=DEVICE_XPOINT)
        if self.caps.reverse_write:
            # Reverse write: XPoint streams the same line to DRAM over
            # the memory route while the armed DDR monitor lets the MC
            # snarf it off the channel (Fig. 10b/12).
            self.ddr_monitor.arm()
            self.ddr_monitor.snarf()
            fill = self._data(
                t, self.line_bits, RequestKind.MIGRATION, RouteKind.MEMORY, DEVICE_DRAM
            )
            self.dram.access(set_addr, True, fill)
            self.ddr_monitor.complete()
        else:
            # Baseline: a second data-route transfer writes the line
            # into the DRAM cache.
            fill = self._data(t, self.line_bits, RequestKind.MIGRATION, device=DEVICE_DRAM)
            self.dram.access(set_addr, True, fill)
        self.directory.fill(line_index, dirty=is_write)
        return t
