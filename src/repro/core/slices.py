"""Per-memory-controller slices of the Ohm memory system.

A GPU has six memory controllers (Table I); each owns one virtual
channel, one DRAM device and one XPoint device (with its logic-layer
controller).  Addresses are page-interleaved across slices by
:class:`repro.core.memsystem.MemorySystem`.

Each slice variant implements ``serve(addr, is_write, now_ps) -> int``
returning the demand request's completion time, reserving every
resource (channel routes, DRAM banks, XPoint buffers) on the shared
timeline.  Migration work triggered by a request reserves resources in
the future without blocking the caller — *how much* of it lands on the
data route is exactly what distinguishes the platforms.
"""

from __future__ import annotations

from typing import Optional

from repro.channel.base import ChannelPort, RouteKind
from repro.channel.electrical import ElectricalChannel
from repro.config import SystemConfig
from repro.core.functions import MigrationCaps
from repro.core.handshake import DdrMonitor, DdrSequenceGenerator
from repro.dram.device import DramDevice
from repro.hetero.hotness import HotnessTracker
from repro.hetero.planar import PlanarMapper
from repro.hetero.two_level import CacheLookup, DramCacheDirectory
from repro.hoststorage.pcie import HostLink
from repro.optical.channel import VirtualChannel
from repro.optical.mrr import FULL_TUNE_PS
from repro.optical.wom import EFFECTIVE_BANDWIDTH_FRACTION
from repro.sim.records import RequestKind
from repro.sim.stats import Stats
from repro.xpoint.controller import XPointController

CMD_BITS = 64  # command + address on the channel
DEVICE_DRAM = 0  # demux target ids on the virtual channel
DEVICE_XPOINT = 1


def _dram_constant_pack(dram: DramDevice) -> Optional[tuple]:
    """``dram._fp`` extended with the counter dict and key strings.

    The slice fast serves inline the whole :meth:`DramDevice.access`
    body (same arithmetic, same counter-update order) against this
    pack.  ``None`` unless ``dram`` is a pristine device — exact type,
    no instance override shadowing ``access`` — in which case the
    caller must keep the reference ``serve`` so a patched device sees
    every access.
    """
    if type(dram) is not DramDevice or "access" in dram.__dict__:
        return None
    return dram._fp + (
        dram._cdict,
        dram._k_refresh_stalls,
        dram._k_accesses,
        dram._k_writes,
        dram._k_reads,
        dram._k_row_hits,
        dram._k_activations,
    )


class SliceBase:
    """Shared plumbing: channel helpers and DRAM streaming occupancy.

    ``_cmd``/``_data`` ride :meth:`ChannelPort.transfer_window`, the
    allocation-free primitive (a ``(start, end)`` tuple, no
    ``TransferResult``) — these run two-plus times per demand request.
    """

    def __init__(self, cfg: SystemConfig, chan: ChannelPort, stats: Stats, name: str) -> None:
        self.cfg = cfg
        self.chan = chan
        self.stats = stats
        self.name = name
        self.line_bits = cfg.gpu.line_bytes * 8
        self.page_bits = cfg.hetero.page_bytes * 8
        self.lines_per_page = cfg.hetero.page_bytes // cfg.gpu.line_bytes
        self._window = chan.transfer_window
        # Demand fast path: the specialized DEMAND/DATA window with the
        # two payload durations (command beat, one line) precomputed.
        self._dwin = chan.demand_data_window
        self._cmd_dur = chan.data_duration_ps(CMD_BITS)
        self._line_dur = chan.data_duration_ps(self.line_bits)
        self._cdict = stats.counters
        self._page_occupancy_ps: Optional[int] = None

    def refresh_channel_binding(self) -> None:
        """Re-resolve the cached ``transfer_window`` binding.

        The audit layer wraps a port's ``transfer_window`` *after* slice
        construction; anything that replaces that method must call this
        so the slice's pre-bound hot-path handle sees the wrapper.  The
        specialized demand binding is dropped at the same time: a
        wrapped ``transfer_window`` must observe every window, so demand
        windows fall back to routing through it — and the fully inlined
        ``serve`` fast path (see :meth:`_bind_fast_path`) is removed so
        the reference implementation (whose windows all route through
        the wrapper) answers again.
        """
        self._window = self.chan.transfer_window
        self._dwin = self._demand_data_fallback
        self.__dict__.pop("serve", None)

    def _bind_fast_path(self) -> None:
        """Install a channel-specialized ``serve`` fast path, if any.

        Concrete slices may provide ``_serve_fast_optical`` /
        ``_serve_fast_electrical`` — fully inlined serve variants whose
        channel-window bodies are arithmetic- and accounting-identical
        to :meth:`ChannelPort.demand_data_window` of the matching
        channel type.  The match is exact (``type() is``), so a
        subclassed or wrapped channel keeps the reference ``serve``.
        The binding is an instance attribute shadowing the class
        method; :meth:`refresh_channel_binding` removes it so a
        validated (audit-instrumented) run routes every window through
        the wrapped ``transfer_window``.
        """
        ch = self.chan
        chan_type = type(ch)
        if chan_type is VirtualChannel:
            fast = getattr(self, "_serve_fast_optical", None)
        elif chan_type is ElectricalChannel:
            fast = getattr(self, "_serve_fast_electrical", None)
        else:
            fast = None
        if fast is None or ch._cdict is not self._cdict:
            return
        self._ch_k_route_data = ch._k_route_data
        self._ch_k_demand_bits = ch._k_demand_bits
        self._ch_k_demand_busy = ch._k_demand_busy
        self._ch_k_transfers = ch._k_transfers
        self._ch_k_energy = ch._k_energy
        # Same operands as the reference per-transfer multiply, computed
        # once — the product (and thus the accumulated float) is
        # bit-identical.
        self._cmd_energy = CMD_BITS * ch._energy_pj_per_bit
        self._line_energy = self.line_bits * ch._energy_pj_per_bit
        if chan_type is VirtualChannel:
            self._ch_k_demux = ch._k_demux
            self._ch_k_mrr = ch._k_mrr
            self._cmd_mrr = CMD_BITS * ch._mrr_tuning_fj_per_bit / 1000.0
            self._line_mrr = self.line_bits * ch._mrr_tuning_fj_per_bit / 1000.0
            degraded_rate = ch._bits_per_ps * EFFECTIVE_BANDWIDTH_FRACTION
            cmd_wom = int(round(CMD_BITS / degraded_rate))
            self._cmd_dur_wom = cmd_wom if cmd_wom >= 1 else 1
            line_wom = int(round(self.line_bits / degraded_rate))
            self._line_dur_wom = line_wom if line_wom >= 1 else 1
            # Channel-side constant pack: the fast serves load all of
            # this with one tuple unpack instead of ~20 attribute
            # chains.  Every entry is a construction-time constant.
            self._fp_chan = (
                ch,
                self._cdict,
                ch.wom_coded,
                self._ch_k_demux,
                self._ch_k_route_data,
                self._ch_k_demand_bits,
                self._ch_k_demand_busy,
                self._ch_k_transfers,
                self._ch_k_energy,
                self._ch_k_mrr,
                self._cmd_dur,
                self._line_dur,
                self._cmd_dur_wom,
                self._line_dur_wom,
                self._cmd_energy,
                self._line_energy,
                self._cmd_mrr,
                self._line_mrr,
                self.line_bits,
                CMD_BITS + self.line_bits,
            )
        else:
            self._fp_chan = (
                ch,
                self._cdict,
                self._ch_k_route_data,
                self._ch_k_demand_bits,
                self._ch_k_demand_busy,
                self._ch_k_transfers,
                self._ch_k_energy,
                self._cmd_dur,
                self._line_dur,
                self._cmd_dur + self._line_dur,
                self._cmd_energy,
                self._line_energy,
                CMD_BITS + self.line_bits,
            )
        self.serve = fast

    def _demand_data_fallback(
        self, now: int, bits: int, duration_ps: int, device: int = 0
    ) -> int:
        return self._window(
            now, bits, RequestKind.DEMAND, RouteKind.DATA, device
        )[1]

    # -- channel helpers -----------------------------------------------

    def _cmd(self, now: int, kind: RequestKind, device: int) -> int:
        return self._window(now, CMD_BITS, kind, RouteKind.DATA, device)[1]

    def _data(
        self,
        now: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> int:
        return self._window(now, bits, kind, route, device)[1]

    def _dram_page_occupancy_ps(self) -> int:
        """Streaming page read/write: activate + first CAS + pipelined
        line bursts at the channel rate.  Constant per slice, so it is
        computed once and cached."""
        if self._page_occupancy_ps is None:
            line_burst = max(1, int(round(self.line_bits / self.chan.bits_per_ps)))
            t = self._dram_timing()
            self._page_occupancy_ps = (
                t.t_rcd_ps + t.t_cl_ps + self.lines_per_page * line_burst
            )
        return self._page_occupancy_ps

    def _dram_timing(self):
        raise NotImplementedError

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        raise NotImplementedError


class DramOnlySlice(SliceBase):
    """Oracle: a DRAM device big enough that nothing ever migrates."""

    def __init__(
        self,
        cfg: SystemConfig,
        chan: ChannelPort,
        dram: DramDevice,
        stats: Stats,
        name: str,
    ) -> None:
        super().__init__(cfg, chan, stats, name)
        self.dram = dram

    def _dram_timing(self):
        return self.dram.timing

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        dwin = self._dwin
        t = dwin(now_ps, CMD_BITS, self._cmd_dur, DEVICE_DRAM)
        if is_write:
            # Writes put the data on the channel first; the column write
            # happens once it lands.
            t = dwin(t, self.line_bits, self._line_dur, DEVICE_DRAM)
            return self.dram.access(addr, True, t)
        t = self.dram.access(addr, False, t)
        return dwin(t, self.line_bits, self._line_dur, DEVICE_DRAM)


class OriginSlice(DramOnlySlice):
    """Origin: small DRAM; non-resident pages fault to the host.

    Page residency uses LRU over the slice's DRAM page frames.  A fault
    costs host latency + a PCIe page transfer + writing the page into
    DRAM through the memory channel (the DMA traffic of Fig. 3b).
    """

    def __init__(
        self,
        cfg: SystemConfig,
        chan: ChannelPort,
        dram: DramDevice,
        host: HostLink,
        stats: Stats,
        name: str,
    ) -> None:
        super().__init__(cfg, chan, dram, stats, name)
        self.host = host
        self.page_bytes = cfg.hetero.page_bytes
        self.num_frames = max(1, dram.capacity_bytes // self.page_bytes)
        self._resident: dict[int, list[int]] = {}  # page -> [tick, dirty]
        self._tick = 0
        self._c_faults = stats.counter("host.faults")
        self._c_writebacks = stats.counter("host.writebacks")
        self._c_dma_time = stats.counter("host.dma_time_ps")
        self._bind_fast_path()
        self._fp_mem = (
            self.page_bytes,
            self.num_frames,
            self._resident,
            dram.access,
        )
        self._fp_dram = _dram_constant_pack(dram)
        if self._fp_dram is None:
            self.__dict__.pop("serve", None)
        # Deferred integer counter accumulators for the fast serve
        # (electrical demand pairs are constant-duration, so a pair
        # count alone reconstructs bits/busy/route/transfers exactly):
        # [unused, pair_count, dram rd_hit, rd_act, wr_hit, wr_act].
        self._dc = [0, 0, 0, 0, 0, 0]
        stats.register_flush(self._flush_deferred)

    def _flush_deferred(self) -> None:
        """Fold the fast serve's batched counts into the counters."""
        dc = self._dc
        _, npairs, rd_hit, rd_act, wr_hit, wr_act = dc
        if npairs:
            dc[1] = 0
            counters = self._cdict
            dpair = self._cmd_dur + self._line_dur
            counters[self._ch_k_demand_bits] += npairs * (CMD_BITS + self.line_bits)
            counters[self._ch_k_demand_busy] += npairs * dpair
            counters[self._ch_k_route_data] += npairs * dpair
            counters[self._ch_k_transfers] += 2 * npairs
        if rd_hit or rd_act or wr_hit or wr_act:
            dc[2] = dc[3] = dc[4] = dc[5] = 0
            fpd = self._fp_dram
            dcd = fpd[16]
            # Guards keep never-incremented keys out of the shared
            # defaultdict (adding 0 would materialize them at 0.0).
            dcd[fpd[18]] += rd_hit + rd_act + wr_hit + wr_act  # accesses
            reads = rd_hit + rd_act
            if reads:
                dcd[fpd[20]] += reads
            writes = wr_hit + wr_act
            if writes:
                dcd[fpd[19]] += writes
            row_hits = rd_hit + wr_hit
            if row_hits:
                dcd[fpd[21]] += row_hits
            activations = rd_act + wr_act
            if activations:
                dcd[fpd[22]] += activations

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        page = addr // self.page_bytes
        self._tick += 1
        ready = now_ps
        entry = self._resident.get(page)
        if entry is not None:
            entry[0] = self._tick
        elif len(self._resident) < self.num_frames:
            # Free frames left: the page was staged before kernel launch
            # (bulk host->GPU copy ahead of time), no demand fault.
            self._resident[page] = [self._tick, False]
        else:
            ready = self._fault(page, now_ps)
        if is_write:
            self._resident[page][1] = True
        return super().serve(addr, is_write, ready)

    def _serve_fast_electrical(self, addr: int, is_write: bool, now_ps: int) -> int:
        """:meth:`serve` with the electrical demand windows inlined.

        Identical arithmetic and accounting to :meth:`serve` (residency
        bookkeeping, then :meth:`DramOnlySlice.serve`) over an
        :class:`ElectricalChannel`; each window body mirrors
        ``ElectricalChannel.demand_data_window``.  The fault slow path
        is untouched — it still routes through :meth:`_fault` and the
        generic channel helpers.  Keep in lock-step with :meth:`serve`.
        """
        (
            ch, counters,
            k_route, k_bits, k_busy, k_tr, k_e,
            cmd_dur, line_dur, dpair, cmd_e, line_e, bits_pair,
        ) = self._fp_chan
        page_bytes, num_frames, resident, dram_access = self._fp_mem
        (
            d_refresh, d_rint, d_rwin, d_cap, d_rowb, d_nbanks,
            d_rpb, d_banks, D_ACTIVE, D_IDLE,
            d_hlat, d_hocc, d_clat, d_cocc, d_xlat, d_xocc,
            dcd, dk_ref, dk_acc, dk_wr, dk_rd, dk_hit, dk_act,
        ) = self._fp_dram
        dc = self._dc
        page = addr // page_bytes
        tick = self._tick + 1
        self._tick = tick
        ready = now_ps
        entry = resident.get(page)
        if entry is not None:
            entry[0] = tick
        elif len(resident) < num_frames:
            # Free frames left: the page was staged before kernel launch
            # (bulk host->GPU copy ahead of time), no demand fault.
            resident[page] = [tick, False]
        else:
            ready = self._fault(page, now_ps)
        if is_write:
            resident[page][1] = True
        # Command beat (demand/data window, inlined); the channel's busy
        # horizon commits once per serve, and the two windows' integer
        # counters merge into single adds (exact for integer-valued
        # accumulators) — the float energy accumulator keeps its two
        # per-window adds in order.
        busy = ch._busy
        start = ready if ready > busy else busy
        t = start + cmd_dur
        if is_write:
            # Writes put the data on the channel first; the column write
            # happens once it lands.
            end = t + line_dur
            ch._busy = end
            dc[1] += 1
            counters[k_e] += cmd_e
            counters[k_e] += line_e
            # DramDevice.access, inlined (write; the address is
            # non-negative — serve is reached through the SM's demand
            # path which rejects negative addresses).
            if d_refresh:
                roff = end % d_rint
                if roff < d_rwin:
                    dcd[dk_ref] += 1
                    end += d_rwin - roff
            row_index = (addr % d_cap) // d_rowb
            bank = d_banks[row_index % d_nbanks]
            row = (row_index // d_nbanks) % d_rpb
            b_busy = bank.busy_until_ps
            s = end if end > b_busy else b_busy
            if bank.state is D_ACTIVE and bank.open_row == row:
                bank.row_hits += 1
                bank.accesses += 1
                bank.busy_until_ps = s + d_hocc
                dc[4] += 1
                return s + d_hlat
            if bank.state is D_IDLE:
                d_lat = d_clat
                d_occ = d_cocc
            else:
                d_lat = d_xlat
                d_occ = d_xocc
            bank.activations += 1
            bank.accesses += 1
            bank.state = D_ACTIVE
            bank.open_row = row
            bank.busy_until_ps = s + d_occ
            dc[5] += 1
            return s + d_lat
        # DramDevice.access, inlined (read).
        rt = t
        if d_refresh:
            roff = rt % d_rint
            if roff < d_rwin:
                dcd[dk_ref] += 1
                rt += d_rwin - roff
        row_index = (addr % d_cap) // d_rowb
        bank = d_banks[row_index % d_nbanks]
        row = (row_index // d_nbanks) % d_rpb
        b_busy = bank.busy_until_ps
        s = rt if rt > b_busy else b_busy
        if bank.state is D_ACTIVE and bank.open_row == row:
            bank.row_hits += 1
            bank.accesses += 1
            bank.busy_until_ps = s + d_hocc
            dc[2] += 1
            t2 = s + d_hlat
        else:
            if bank.state is D_IDLE:
                d_lat = d_clat
                d_occ = d_cocc
            else:
                d_lat = d_xlat
                d_occ = d_xocc
            bank.activations += 1
            bank.accesses += 1
            bank.state = D_ACTIVE
            bank.open_row = row
            bank.busy_until_ps = s + d_occ
            dc[3] += 1
            t2 = s + d_lat
        start = t2 if t2 > t else t
        end = start + line_dur
        ch._busy = end
        dc[1] += 1
        counters[k_e] += cmd_e
        counters[k_e] += line_e
        return end

    def _fault(self, page: int, now_ps: int) -> int:
        self._c_faults.add(1)
        if len(self._resident) >= self.num_frames:
            victim = min(self._resident, key=lambda p: self._resident[p][0])
            _, dirty = self._resident.pop(victim)
            if dirty:
                # Dirty victim: write the page back to the host first.
                self._c_writebacks.add(1)
                now_ps = self.host.transfer(now_ps, self.page_bytes)
        self._resident[page] = [self._tick, False]
        # Host-side latency + PCIe transfer of the page.
        arrive = self.host.transfer(now_ps, self.page_bytes)
        # DMA the page into DRAM through the memory channel.
        self.dram.occupy_bank(page * self.page_bytes, arrive, self._dram_page_occupancy_ps())
        done = self._data(
            arrive, self.page_bits, RequestKind.HOST_DMA, device=DEVICE_DRAM
        )
        self._c_dma_time.add(done - arrive)
        return done


class HeteroSliceBase(SliceBase):
    """Shared parts of the planar and two-level hetero slices."""

    def __init__(
        self,
        cfg: SystemConfig,
        chan: ChannelPort,
        dram: DramDevice,
        xp: XPointController,
        caps: MigrationCaps,
        stats: Stats,
        name: str,
    ) -> None:
        super().__init__(cfg, chan, stats, name)
        self.dram = dram
        self.xp = xp
        self.caps = caps
        self.seq_gen = DdrSequenceGenerator()
        self.ddr_monitor = DdrMonitor()

    def _dram_timing(self):
        return self.dram.timing

    # -- device-side bulk helpers --------------------------------------

    def _xp_page_read(self, xp_addr: int, now: int) -> int:
        t = now
        line = self.cfg.gpu.line_bytes
        for i in range(self.lines_per_page):
            t = max(t, self.xp.read(xp_addr + i * line, now))
        return t

    def _xp_page_write(self, xp_addr: int, now: int) -> int:
        t = now
        line = self.cfg.gpu.line_bytes
        for i in range(self.lines_per_page):
            t = max(t, self.xp.write(xp_addr + i * line, now))
        return t


class PlanarSlice(HeteroSliceBase):
    """Planar memory mode (Fig. 7a) with per-platform swap execution."""

    def __init__(self, cfg, chan, dram, xp, caps, stats, name) -> None:
        super().__init__(cfg, chan, dram, xp, caps, stats, name)
        page = cfg.hetero.page_bytes
        num_groups = max(1, dram.capacity_bytes // page)
        slots = cfg.hetero.dram_to_xpoint_ratio + 1
        self.mapper = PlanarMapper(num_groups, slots)
        self.hotness = HotnessTracker(
            cfg.hetero.hot_threshold, cfg.hetero.hotness_decay_accesses
        )
        self.page_bytes = page
        self._c_migrations = stats.counter("mem.migrations")
        self._c_swaps = stats.counter("mem.swaps")
        self._bind_fast_path()
        # Memory-side constant pack for the fast serve (containers are
        # stable identities; their contents mutate in place).
        self._fp_mem = (
            page,
            self.mapper.num_groups,
            self.mapper.slots_per_group,
            self.mapper._dram_slot,
            self.mapper._xp_page_of_slot,
            self.mapper,
            self.dram.access,
            self.xp.read,
            self.xp.write,
            self.hotness,
        )
        self._fp_dram = _dram_constant_pack(dram)
        if self._fp_dram is None:
            self.__dict__.pop("serve", None)
        # Deferred integer counter accumulators for the fast serve:
        # [pair_dur_sum, pair_count, dram rd_hit, rd_act, wr_hit,
        # wr_act].  Folded into the shared counters on demand — exact
        # for integer-valued accumulators (see Stats.register_flush).
        self._dc = [0, 0, 0, 0, 0, 0]
        stats.register_flush(self._flush_deferred)

    def _flush_deferred(self) -> None:
        """Fold the fast serve's batched counts into the counters."""
        dc = self._dc
        pair_dur, npairs, rd_hit, rd_act, wr_hit, wr_act = dc
        if npairs:
            dc[0] = dc[1] = 0
            counters = self._cdict
            counters[self._ch_k_route_data] += pair_dur
            counters[self._ch_k_demand_bits] += npairs * (CMD_BITS + self.line_bits)
            counters[self._ch_k_demand_busy] += pair_dur
            counters[self._ch_k_transfers] += 2 * npairs
        if rd_hit or rd_act or wr_hit or wr_act:
            dc[2] = dc[3] = dc[4] = dc[5] = 0
            fpd = self._fp_dram
            dcd = fpd[16]
            # Guards keep never-incremented keys out of the shared
            # defaultdict (adding 0 would materialize them at 0.0).
            dcd[fpd[18]] += rd_hit + rd_act + wr_hit + wr_act  # accesses
            reads = rd_hit + rd_act
            if reads:
                dcd[fpd[20]] += reads
            writes = wr_hit + wr_act
            if writes:
                dcd[fpd[19]] += writes
            row_hits = rd_hit + wr_hit
            if row_hits:
                dcd[fpd[21]] += row_hits
            activations = rd_act + wr_act
            if activations:
                dcd[fpd[22]] += activations

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        page, offset = divmod(addr, self.page_bytes)
        # Mapping-table lookup, inlined from PlanarMapper.lookup: the
        # per-request path builds no PlanarPlacement record (the
        # allocation showed up as GC pressure) — keep the two in sync.
        mapper = self.mapper
        group = page % mapper.num_groups
        slot = page // mapper.num_groups
        if slot >= mapper.slots_per_group:
            raise mapper._capacity_error(page)
        dwin = self._dwin
        if mapper._dram_slot[group] == slot:
            dram_addr = group * self.page_bytes + offset
            t = dwin(now_ps, CMD_BITS, self._cmd_dur, DEVICE_DRAM)
            if is_write:
                t = dwin(t, self.line_bits, self._line_dur, DEVICE_DRAM)
                return self.dram.access(dram_addr, True, t)
            t = self.dram.access(dram_addr, False, t)
            return dwin(t, self.line_bits, self._line_dur, DEVICE_DRAM)
        # XPoint access path.
        xp_addr = mapper._xp_page(group, slot) * self.page_bytes + offset
        t = dwin(now_ps, CMD_BITS, self._cmd_dur, DEVICE_XPOINT)
        if is_write:
            # Data rides the channel, then lands in the persistent write
            # buffer (DDR-T posts the write; media persistence is async).
            done = dwin(t, self.line_bits, self._line_dur, DEVICE_XPOINT)
            self.xp.write(xp_addr, done)
        else:
            t = self.xp.read(xp_addr, t)
            done = dwin(t, self.line_bits, self._line_dur, DEVICE_XPOINT)
        # Hot-page detection happens on XPoint traffic only.
        if self.hotness.record((group, slot)):
            self._migrate(page, done)
            self.hotness.reset((group, slot))
        return done

    def _serve_fast_optical(self, addr: int, is_write: bool, now_ps: int) -> int:
        """:meth:`serve` with the optical demand windows fully inlined.

        Arithmetic- and accounting-identical to :meth:`serve` over a
        :class:`VirtualChannel`: every window body mirrors
        ``VirtualChannel.demand_data_window`` (same counter keys, same
        update order, same WOM degradation math — the degraded
        durations and energy/MRR increments are the same expressions
        precomputed in :meth:`SliceBase._bind_fast_path`).  The second
        window of each pair targets the same demux device as the
        first with nothing touching the channel in between, so its
        retune check is statically false and elided.  Keep in
        lock-step with :meth:`serve`.
        """
        (
            ch, counters, wom,
            k_demux, k_route, k_bits, k_busy, k_tr, k_e, k_mrr,
            cmd_dur, line_dur, cmd_dur_wom, line_dur_wom,
            cmd_e, line_e, cmd_mrr, line_mrr,
            line_bits, bits_pair,
        ) = self._fp_chan
        (
            page_bytes, num_groups, slots_per_group, dram_slot,
            xp_overrides, mapper, dram_access, xp_read, xp_write, hot,
        ) = self._fp_mem
        page = addr // page_bytes
        offset = addr - page * page_bytes
        group = page % num_groups
        slot = page // num_groups
        if slot >= slots_per_group:
            raise mapper._capacity_error(page)
        dc = self._dc
        # Command beat (demand/data window, inlined).  The channel's
        # busy horizon is committed once per serve — between the paired
        # windows nothing else reads it — and the two windows' integer
        # counters (route/bits/busy/transfers) merge into single adds
        # (exact for integer-valued accumulators); the float energy/MRR
        # accumulators keep their two per-window adds in order.
        start = ch._busy_data
        if now_ps > start:
            start = now_ps
        wau = ch._wom_active_until if wom else 0
        if dram_slot[group] == slot:
            (
                d_refresh, d_rint, d_rwin, d_cap, d_rowb, d_nbanks,
                d_rpb, d_banks, D_ACTIVE, D_IDLE,
                d_hlat, d_hocc, d_clat, d_cocc, d_xlat, d_xocc,
                dcd, dk_ref, dk_acc, dk_wr, dk_rd, dk_hit, dk_act,
            ) = self._fp_dram
            if ch._dev_data != DEVICE_DRAM:
                start += FULL_TUNE_PS
                ch._dev_data = DEVICE_DRAM
                counters[k_demux] += 1
            dur = cmd_dur_wom if wom and start < wau else cmd_dur
            t = start + dur
            dram_addr = group * page_bytes + offset
            if is_write:
                # Line beat rides the channel, then the column write.
                dur2 = line_dur_wom if wom and t < wau else line_dur
                end = t + dur2
                ch._busy_data = end
                dc[0] += dur + dur2  # route + demand busy, batched
                dc[1] += 1  # demand bits + transfers, batched
                counters[k_e] += cmd_e
                counters[k_e] += line_e
                counters[k_mrr] += cmd_mrr
                counters[k_mrr] += line_mrr
                # DramDevice.access, inlined (write; the address is
                # non-negative by construction so the reference body's
                # sign check is elided).
                if d_refresh:
                    roff = end % d_rint
                    if roff < d_rwin:
                        dcd[dk_ref] += 1
                        end += d_rwin - roff
                row_index = (dram_addr % d_cap) // d_rowb
                bank = d_banks[row_index % d_nbanks]
                row = (row_index // d_nbanks) % d_rpb
                b_busy = bank.busy_until_ps
                s = end if end > b_busy else b_busy
                if bank.state is D_ACTIVE and bank.open_row == row:
                    bank.row_hits += 1
                    bank.accesses += 1
                    bank.busy_until_ps = s + d_hocc
                    dc[4] += 1  # write row-hit, batched
                    return s + d_hlat
                if bank.state is D_IDLE:
                    d_lat = d_clat
                    d_occ = d_cocc
                else:
                    d_lat = d_xlat
                    d_occ = d_xocc
                bank.activations += 1
                bank.accesses += 1
                bank.state = D_ACTIVE
                bank.open_row = row
                bank.busy_until_ps = s + d_occ
                dc[5] += 1  # write activation, batched
                return s + d_lat
            # DramDevice.access, inlined (read).
            rt = t
            if d_refresh:
                roff = rt % d_rint
                if roff < d_rwin:
                    dcd[dk_ref] += 1
                    rt += d_rwin - roff
            row_index = (dram_addr % d_cap) // d_rowb
            bank = d_banks[row_index % d_nbanks]
            row = (row_index // d_nbanks) % d_rpb
            b_busy = bank.busy_until_ps
            s = rt if rt > b_busy else b_busy
            if bank.state is D_ACTIVE and bank.open_row == row:
                bank.row_hits += 1
                bank.accesses += 1
                bank.busy_until_ps = s + d_hocc
                dc[2] += 1  # read row-hit, batched
                t2 = s + d_hlat
            else:
                if bank.state is D_IDLE:
                    d_lat = d_clat
                    d_occ = d_cocc
                else:
                    d_lat = d_xlat
                    d_occ = d_xocc
                bank.activations += 1
                bank.accesses += 1
                bank.state = D_ACTIVE
                bank.open_row = row
                bank.busy_until_ps = s + d_occ
                dc[3] += 1  # read activation, batched
                t2 = s + d_lat
            start = t if t2 < t else t2
            dur2 = line_dur_wom if wom and start < wau else line_dur
            end = start + dur2
            ch._busy_data = end
            dc[0] += dur + dur2
            dc[1] += 1
            counters[k_e] += cmd_e
            counters[k_e] += line_e
            counters[k_mrr] += cmd_mrr
            counters[k_mrr] += line_mrr
            return end
        # XPoint access path (PlanarMapper._xp_page, inlined).
        xp_page = xp_overrides[group].get(slot)
        if xp_page is None:
            if slot == 0:
                raise KeyError(f"slot 0 of group {group} has no XPoint page yet")
            xp_page = group * (slots_per_group - 1) + (slot - 1)
        xp_addr = xp_page * page_bytes + offset
        if ch._dev_data != DEVICE_XPOINT:
            start += FULL_TUNE_PS
            ch._dev_data = DEVICE_XPOINT
            counters[k_demux] += 1
        dur = cmd_dur_wom if wom and start < wau else cmd_dur
        t = start + dur
        if is_write:
            # Data rides the channel, then lands in the persistent write
            # buffer (DDR-T posts the write; media persistence is async).
            dur2 = line_dur_wom if wom and t < wau else line_dur
            done = t + dur2
            ch._busy_data = done
            dc[0] += dur + dur2
            dc[1] += 1
            counters[k_e] += cmd_e
            counters[k_e] += line_e
            counters[k_mrr] += cmd_mrr
            counters[k_mrr] += line_mrr
            xp_write(xp_addr, done)
        else:
            t2 = xp_read(xp_addr, t)
            start = t if t2 < t else t2
            dur2 = line_dur_wom if wom and start < wau else line_dur
            done = start + dur2
            ch._busy_data = done
            dc[0] += dur + dur2
            dc[1] += 1
            counters[k_e] += cmd_e
            counters[k_e] += line_e
            counters[k_mrr] += cmd_mrr
            counters[k_mrr] += line_mrr
        # Hot-page detection (HotnessTracker.record, inlined).
        hot.total_tracked += 1
        hot._since_decay += 1
        if hot._since_decay >= hot.decay_accesses:
            hot._decay()
        hcounts = hot._counts
        hkey = (group, slot)
        count = hcounts[hkey] + 1
        hcounts[hkey] = count
        if count == hot.threshold:
            self._migrate(page, done)
            hcounts.pop(hkey, None)
        return done

    # -- migration ------------------------------------------------------

    def _migrate(self, page: int, now_ps: int) -> None:
        plan = self.mapper.plan_swap(page)
        if plan is None:
            return
        self._c_migrations.add(1)
        self._c_swaps.add(1)
        dram_addr = plan.dram_page * self.page_bytes
        xp_addr = plan.xpoint_page * self.page_bytes
        if self.caps.swap:
            self._migrate_swap_function(dram_addr, xp_addr, now_ps)
        else:
            self._migrate_controller_copy(dram_addr, xp_addr, now_ps)
        self.mapper.commit_swap(plan)

    def _migrate_controller_copy(self, dram_addr: int, xp_addr: int, now: int) -> None:
        """Baseline: the MC copies everything through its buffer; every
        leg occupies the shared data route (Fig. 7a step 6 problem)."""
        occupancy = self._dram_page_occupancy_ps()
        # Leg 1: read the DRAM page to the MC buffer.
        start, dev_done = self.dram.occupy_bank(dram_addr, now, occupancy)
        t = self._data(dev_done, self.page_bits, RequestKind.MIGRATION, device=DEVICE_DRAM)
        if self.caps.auto_rw:
            # Auto-read/write: XPoint snarfed leg 1 off the waveguide, so
            # the MC->XPoint transfer disappears (Fig. 9a).
            for i in range(self.lines_per_page):
                self.xp.snarf_write(xp_addr + i * self.cfg.gpu.line_bytes, t)
        else:
            t = self._data(t, self.page_bits, RequestKind.MIGRATION, device=DEVICE_XPOINT)
            self._xp_page_write(xp_addr, t)
        # Legs 3-4: XPoint page to DRAM (no snarf possible: DRAM has no
        # controller to perform it — Section IV-B).
        t2 = self._xp_page_read(xp_addr, now)
        t2 = self._data(t2, self.page_bits, RequestKind.MIGRATION, device=DEVICE_XPOINT)
        t2 = self._data(t2, self.page_bits, RequestKind.MIGRATION, device=DEVICE_DRAM)
        self.dram.occupy_bank(dram_addr, t2, occupancy)

    def _migrate_swap_function(self, dram_addr: int, xp_addr: int, now: int) -> None:
        """SWAP-CMD path (Fig. 10a/11): the XPoint controller drives the
        whole exchange over the memory route; the data route only
        carries the command and completion signals."""
        # Step 1: MC presets the target DRAM bank to a stable state.
        bank_ready = self.dram.activate_for_swap(dram_addr, now)
        self.seq_gen.preset(dram_addr)
        # Step 2: SWAP-CMD with DRAM/XPoint addresses and size rides the
        # data route (it is tiny: metadata only).
        t = self._data(bank_ready, CMD_BITS * 2, RequestKind.MIGRATION, device=DEVICE_XPOINT)
        t += self.seq_gen.start(dram_addr)
        # Steps 3-4: DDR sequence generator moves both pages over the
        # memory route; the DRAM bank is occupied, the data route is not.
        occupancy = self._dram_page_occupancy_ps()
        _, bank_done = self.dram.occupy_bank(dram_addr, t, 2 * occupancy)
        leg1 = self._data(t, self.page_bits, RequestKind.MIGRATION, RouteKind.MEMORY, DEVICE_XPOINT)
        self._xp_page_write(xp_addr + 0, leg1)
        leg2_src = self._xp_page_read(xp_addr, t)
        leg2 = self._data(
            max(leg1, leg2_src), self.page_bits, RequestKind.MIGRATION, RouteKind.MEMORY, DEVICE_DRAM
        )
        end = max(bank_done, leg2)
        if self.caps.wom_coded and hasattr(self.chan, "set_wom_window"):
            # WOM coding: demand traffic on the data route runs at 2/3
            # width while the swap shares the light (Section V-B).
            self.chan.set_wom_window(now, end - t)
        # Steps 5-6: ready + confirm ride the DDR-T side band (they are
        # single-cycle signals, not data-route occupancies).
        self.seq_gen.finish()
        self.seq_gen.confirm()


class TwoLevelSlice(HeteroSliceBase):
    """Two-level memory mode (Fig. 7b): DRAM as a direct-mapped cache."""

    def __init__(self, cfg, chan, dram, xp, caps, stats, name) -> None:
        super().__init__(cfg, chan, dram, xp, caps, stats, name)
        self.num_sets = max(1, dram.capacity_bytes // cfg.gpu.line_bytes)
        self.directory = DramCacheDirectory(self.num_sets)
        self.line_bytes = cfg.gpu.line_bytes
        self._c_hits = stats.counter("mem.dram_cache_hits")
        self._c_misses = stats.counter("mem.dram_cache_misses")
        self._c_migrations = stats.counter("mem.migrations")
        self._bind_fast_path()
        directory = self.directory
        mig_keys = chan._kind_keys[RequestKind.MIGRATION]
        self._fp_mem = (
            self.line_bytes,
            directory,
            directory._valid,
            directory._dirty,
            directory._tag,
            directory.num_sets,
            dram.access,
            xp.read,
            xp.write,
            self._c_hits.name,
            self._c_misses.name,
            self._c_migrations.name,
            mig_keys[0],
            mig_keys[1],
            # The fully inlined miss body covers only the baseline data
            # movement; platforms with auto-read/write or reverse-write
            # capabilities route misses through the reference _miss.
            not (caps.auto_rw or caps.reverse_write),
        )
        self._fp_dram = _dram_constant_pack(dram)
        if self._fp_dram is None:
            self.__dict__.pop("serve", None)
        self._k_mig_bits = mig_keys[0]
        self._k_mig_busy = mig_keys[1]
        # Deferred integer counter accumulators for the fast serve:
        # [demand pair duration sum, demand pair count,
        #  dram rd_hit, rd_act, wr_hit, wr_act,
        #  migration window duration sum, migration window count].
        self._dc = [0, 0, 0, 0, 0, 0, 0, 0]
        stats.register_flush(self._flush_deferred)

    def _flush_deferred(self) -> None:
        """Fold the fast serve's batched counts into the counters."""
        dc = self._dc
        pair_dur, npairs, rd_hit, rd_act, wr_hit, wr_act, mig_dur, nmig = dc
        if npairs or nmig:
            dc[0] = dc[1] = dc[6] = dc[7] = 0
            counters = self._cdict
            counters[self._ch_k_route_data] += pair_dur + mig_dur
            counters[self._ch_k_demand_bits] += npairs * (CMD_BITS + self.line_bits)
            counters[self._ch_k_demand_busy] += pair_dur
            counters[self._ch_k_transfers] += 2 * npairs + nmig
            counters[self._k_mig_bits] += nmig * self.line_bits
            counters[self._k_mig_busy] += mig_dur
        if rd_hit or rd_act or wr_hit or wr_act:
            dc[2] = dc[3] = dc[4] = dc[5] = 0
            fpd = self._fp_dram
            dcd = fpd[16]
            # Guards keep never-incremented keys out of the shared
            # defaultdict (adding 0 would materialize them at 0.0).
            dcd[fpd[18]] += rd_hit + rd_act + wr_hit + wr_act  # accesses
            reads = rd_hit + rd_act
            if reads:
                dcd[fpd[20]] += reads
            writes = wr_hit + wr_act
            if writes:
                dcd[fpd[19]] += writes
            row_hits = rd_hit + wr_hit
            if row_hits:
                dcd[fpd[21]] += row_hits
            activations = rd_act + wr_act
            if activations:
                dcd[fpd[22]] += activations

    def serve(self, addr: int, is_write: bool, now_ps: int) -> int:
        line_index = addr // self.line_bytes
        lookup = self.directory.lookup(line_index)
        set_addr = lookup.set_index * self.line_bytes
        dwin = self._dwin
        # Tag check and data fetch are ONE DRAM access: the metadata
        # lives in the line's ECC region (Section III-B).
        t = dwin(now_ps, CMD_BITS, self._cmd_dur, DEVICE_DRAM)
        t = self.dram.access(set_addr, False, t)
        t = dwin(t, self.line_bits, self._line_dur, DEVICE_DRAM)
        if lookup.hit:
            self._c_hits.add(1)
            if is_write:
                self.directory.mark_dirty(line_index)
                t = self.dram.access(set_addr, True, t)
            return t
        self._c_misses.add(1)
        return self._miss(line_index, lookup, set_addr, is_write, t)

    def _serve_fast_optical(self, addr: int, is_write: bool, now_ps: int) -> int:
        """:meth:`serve` with directory probe and windows inlined.

        Identical arithmetic and accounting to :meth:`serve` over a
        :class:`VirtualChannel`; the directory probe touches the
        valid/dirty/tag arrays directly (a :class:`CacheLookup` record
        is built only on the miss path, where :meth:`_miss` needs it),
        and both demand windows mirror
        ``VirtualChannel.demand_data_window``.  Keep in lock-step with
        :meth:`serve`.
        """
        (
            ch, counters, wom,
            k_demux, k_route, k_bits, k_busy, k_tr, k_e, k_mrr,
            cmd_dur, line_dur, cmd_dur_wom, line_dur_wom,
            cmd_e, line_e, cmd_mrr, line_mrr,
            line_bits, bits_pair,
        ) = self._fp_chan
        (
            line_bytes, directory, dvalid, ddirty, dtag, num_sets,
            dram_access, xp_read, xp_write,
            k_hits, k_misses, k_migrations, k_mig_bits, k_mig_busy,
            miss_inline,
        ) = self._fp_mem
        (
            d_refresh, d_rint, d_rwin, d_cap, d_rowb, d_nbanks,
            d_rpb, d_banks, D_ACTIVE, D_IDLE,
            d_hlat, d_hocc, d_clat, d_cocc, d_xlat, d_xocc,
            dcd, dk_ref, dk_acc, dk_wr, dk_rd, dk_hit, dk_act,
        ) = self._fp_dram
        dc = self._dc
        line_index = addr // line_bytes
        set_index = line_index % num_sets
        tag = line_index // num_sets
        valid = dvalid[set_index]
        victim_tag = dtag[set_index]
        hit = valid and victim_tag == tag
        if hit:
            directory.hits += 1
        else:
            directory.misses += 1
        set_addr = set_index * line_bytes
        # Command beat; tag check and data fetch are ONE DRAM access —
        # the metadata lives in the line's ECC region (Section III-B).
        # As in the planar fast serve, the channel's busy horizon
        # commits once per window pair and the integer counters of a
        # pair merge into single adds (exact for integer-valued
        # accumulators); float energy/MRR adds stay separate, in order.
        start = ch._busy_data
        if now_ps > start:
            start = now_ps
        if ch._dev_data != DEVICE_DRAM:
            start += FULL_TUNE_PS
            ch._dev_data = DEVICE_DRAM
            counters[k_demux] += 1
        wau = ch._wom_active_until if wom else 0
        dur = cmd_dur_wom if wom and start < wau else cmd_dur
        t = start + dur
        # DramDevice.access, inlined (tag-check read; the address is
        # non-negative by construction so the reference body's sign
        # check is elided).
        rt = t
        if d_refresh:
            roff = rt % d_rint
            if roff < d_rwin:
                dcd[dk_ref] += 1
                rt += d_rwin - roff
        row_index = (set_addr % d_cap) // d_rowb
        bank = d_banks[row_index % d_nbanks]
        row = (row_index // d_nbanks) % d_rpb
        b_busy = bank.busy_until_ps
        s = rt if rt > b_busy else b_busy
        if bank.state is D_ACTIVE and bank.open_row == row:
            bank.row_hits += 1
            bank.accesses += 1
            bank.busy_until_ps = s + d_hocc
            dc[2] += 1
            t2 = s + d_hlat
        else:
            if bank.state is D_IDLE:
                d_lat = d_clat
                d_occ = d_cocc
            else:
                d_lat = d_xlat
                d_occ = d_xocc
            bank.activations += 1
            bank.accesses += 1
            bank.state = D_ACTIVE
            bank.open_row = row
            bank.busy_until_ps = s + d_occ
            dc[3] += 1
            t2 = s + d_lat
        start = t if t2 < t else t2
        dur2 = line_dur_wom if wom and start < wau else line_dur
        t = start + dur2
        ch._busy_data = t
        dc[0] += dur + dur2
        dc[1] += 1
        counters[k_e] += cmd_e
        counters[k_e] += line_e
        counters[k_mrr] += cmd_mrr
        counters[k_mrr] += line_mrr
        if hit:
            counters[k_hits] += 1
            if is_write:
                # mark_dirty's residency check is statically true here.
                ddirty[set_index] = True
                # DramDevice.access, inlined (write-through of the hit).
                if d_refresh:
                    roff = t % d_rint
                    if roff < d_rwin:
                        dcd[dk_ref] += 1
                        t += d_rwin - roff
                row_index = (set_addr % d_cap) // d_rowb
                bank = d_banks[row_index % d_nbanks]
                row = (row_index // d_nbanks) % d_rpb
                b_busy = bank.busy_until_ps
                s = t if t > b_busy else b_busy
                if bank.state is D_ACTIVE and bank.open_row == row:
                    bank.row_hits += 1
                    bank.accesses += 1
                    bank.busy_until_ps = s + d_hocc
                    dc[4] += 1
                    return s + d_hlat
                if bank.state is D_IDLE:
                    d_lat = d_clat
                    d_occ = d_cocc
                else:
                    d_lat = d_xlat
                    d_occ = d_xocc
                bank.activations += 1
                bank.accesses += 1
                bank.state = D_ACTIVE
                bank.open_row = row
                bank.busy_until_ps = s + d_occ
                dc[5] += 1
                return s + d_lat
            return t
        counters[k_misses] += 1
        if not miss_inline:
            lookup = CacheLookup(
                hit, set_index, tag, victim_tag,
                ddirty[set_index], valid,
            )
            return self._miss(line_index, lookup, set_addr, is_write, t)
        # -- baseline miss, fully inlined (mirrors :meth:`_miss` with
        # neither auto-read/write nor reverse-write) --
        xp_addr = line_index * line_bytes
        counters[k_migrations] += 1
        busy = t
        # Eviction of the victim line: one MIGRATION window on the data
        # route to the XPoint device, then the buffered media write.
        if valid and ddirty[set_index]:
            vstart = busy
            if ch._dev_data != DEVICE_XPOINT:
                vstart += FULL_TUNE_PS
                ch._dev_data = DEVICE_XPOINT
                counters[k_demux] += 1
            vdur = line_dur_wom if wom and vstart < wau else line_dur
            busy = vstart + vdur
            dc[6] += vdur
            dc[7] += 1
            counters[k_e] += line_e
            counters[k_mrr] += line_mrr
            xp_write((victim_tag * num_sets + set_index) * line_bytes, busy)
        # Fill from XPoint: command beat + demand-critical line transfer.
        fstart = busy
        if ch._dev_data != DEVICE_XPOINT:
            fstart += FULL_TUNE_PS
            ch._dev_data = DEVICE_XPOINT
            counters[k_demux] += 1
        fdur = cmd_dur_wom if wom and fstart < wau else cmd_dur
        f1 = fstart + fdur
        r = xp_read(xp_addr, f1)
        rstart = f1 if r < f1 else r
        rdur = line_dur_wom if wom and rstart < wau else line_dur
        ret = rstart + rdur
        dc[0] += fdur + rdur
        dc[1] += 1
        counters[k_e] += cmd_e
        counters[k_e] += line_e
        counters[k_mrr] += cmd_mrr
        counters[k_mrr] += line_mrr
        # Second data-route transfer writes the line into the DRAM
        # cache (MIGRATION window back to the DRAM device).
        mstart = ret
        if ch._dev_data != DEVICE_DRAM:
            mstart += FULL_TUNE_PS
            ch._dev_data = DEVICE_DRAM
            counters[k_demux] += 1
        mdur = line_dur_wom if wom and mstart < wau else line_dur
        fill = mstart + mdur
        ch._busy_data = fill
        dc[6] += mdur
        dc[7] += 1
        counters[k_e] += line_e
        counters[k_mrr] += line_mrr
        # DramDevice.access, inlined (cache-fill write; the returned
        # completion time is unused, matching the reference).
        if d_refresh:
            roff = fill % d_rint
            if roff < d_rwin:
                dcd[dk_ref] += 1
                fill += d_rwin - roff
        row_index = (set_addr % d_cap) // d_rowb
        bank = d_banks[row_index % d_nbanks]
        row = (row_index // d_nbanks) % d_rpb
        b_busy = bank.busy_until_ps
        s = fill if fill > b_busy else b_busy
        if bank.state is D_ACTIVE and bank.open_row == row:
            bank.row_hits += 1
            bank.accesses += 1
            bank.busy_until_ps = s + d_hocc
            dc[4] += 1
        else:
            if bank.state is D_IDLE:
                d_occ = d_cocc
            else:
                d_occ = d_xocc
            bank.activations += 1
            bank.accesses += 1
            bank.state = D_ACTIVE
            bank.open_row = row
            bank.busy_until_ps = s + d_occ
            dc[5] += 1
        # directory.fill, inlined.
        dvalid[set_index] = True
        ddirty[set_index] = is_write
        dtag[set_index] = tag
        return ret

    def _miss(self, line_index, lookup, set_addr, is_write, now: int) -> int:
        xp_addr = line_index * self.line_bytes
        self._c_migrations.add(1)
        # --- eviction of the victim line ---
        if lookup.victim_valid and lookup.victim_dirty:
            victim_addr = self.directory.victim_line_index(lookup) * self.line_bytes
            if self.caps.auto_rw:
                # The XPoint controller snarfed the tag-check read off
                # the waveguide and owns the eviction (Fig. 9b).
                self.xp.snarf_write(victim_addr, now)
            else:
                t = self._data(now, self.line_bits, RequestKind.MIGRATION, device=DEVICE_XPOINT)
                self.xp.write(victim_addr, t)
        # --- fill from XPoint ---
        t = self._dwin(now, CMD_BITS, self._cmd_dur, DEVICE_XPOINT)
        t = self.xp.read(xp_addr, t)
        # Demand-critical transfer: XPoint -> memory controller.
        t = self._dwin(t, self.line_bits, self._line_dur, DEVICE_XPOINT)
        if self.caps.reverse_write:
            # Reverse write: XPoint streams the same line to DRAM over
            # the memory route while the armed DDR monitor lets the MC
            # snarf it off the channel (Fig. 10b/12).
            self.ddr_monitor.arm()
            self.ddr_monitor.snarf()
            fill = self._data(
                t, self.line_bits, RequestKind.MIGRATION, RouteKind.MEMORY, DEVICE_DRAM
            )
            self.dram.access(set_addr, True, fill)
            self.ddr_monitor.complete()
        else:
            # Baseline: a second data-route transfer writes the line
            # into the DRAM cache.
            fill = self._data(t, self.line_bits, RequestKind.MIGRATION, device=DEVICE_DRAM)
            self.dram.access(set_addr, True, fill)
        self.directory.fill(line_index, dirty=is_write)
        return t
