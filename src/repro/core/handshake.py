"""Hardware handshake blocks added by Ohm-GPU (Figures 11 and 12).

These are small state machines the memory controller and the XPoint
controller exchange over the DDR-T side channel:

* :class:`DdrSequenceGenerator` — lives in the XPoint controller; turns
  a SWAP-CMD into the DDR read/write transactions that drive DRAM
  directly (swap function, Fig. 11).
* :class:`DdrMonitor` — lives in the memory controller; snoops the
  channel while XPoint performs a reverse write so the controller can
  collect the demand data without a second transfer (Fig. 12).

They are modelled at protocol granularity: each step is an explicit
method with its latency, and misuse (e.g. issuing a swap while one is
active, or snarfing without arming the monitor) raises — the tests use
that to pin the paper's sequencing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import ns

# DDR-T side-band message latency (ready / confirm / complete signals).
SIGNAL_LATENCY_PS = ns(2.0)


class SwapState(enum.Enum):
    IDLE = "idle"
    BANK_PRESET = "bank_preset"  # MC precharged/activated the target bank
    RUNNING = "running"  # DDR sequence generator owns the DRAM bank
    COMPLETE = "complete"  # ready signal sent, awaiting MC confirm


@dataclass
class DdrSequenceGenerator:
    """SWAP-CMD execution state machine in the XPoint controller."""

    state: SwapState = SwapState.IDLE
    swaps_completed: int = 0
    _target_addr: Optional[int] = None

    def preset(self, dram_addr: int) -> None:
        """Step 1 (MC side): the target bank was activated for us."""
        if self.state is not SwapState.IDLE:
            raise RuntimeError(f"cannot preset while {self.state.value}")
        self.state = SwapState.BANK_PRESET
        self._target_addr = dram_addr

    def start(self, dram_addr: int) -> int:
        """Step 2: SWAP-CMD received; returns handshake latency (ps)."""
        if self.state is not SwapState.BANK_PRESET:
            raise RuntimeError("SWAP-CMD without a preset bank")
        if dram_addr != self._target_addr:
            raise RuntimeError("SWAP-CMD targets a bank that was not preset")
        self.state = SwapState.RUNNING
        return SIGNAL_LATENCY_PS

    def finish(self) -> int:
        """Steps 3-5: transactions done; sends the ready signal."""
        if self.state is not SwapState.RUNNING:
            raise RuntimeError("finish without a running swap")
        self.state = SwapState.COMPLETE
        return SIGNAL_LATENCY_PS

    def confirm(self) -> None:
        """Step 6: MC confirmed; generator returns to idle."""
        if self.state is not SwapState.COMPLETE:
            raise RuntimeError("confirm without a completed swap")
        self.state = SwapState.IDLE
        self._target_addr = None
        self.swaps_completed += 1

    @property
    def busy(self) -> bool:
        return self.state in (SwapState.RUNNING, SwapState.COMPLETE)


class MonitorState(enum.Enum):
    DISABLED = "disabled"
    ARMED = "armed"  # MC stopped issuing requests, monitor listening
    SNARFING = "snarfing"


@dataclass
class DdrMonitor:
    """Reverse-write snoop logic in the memory controller."""

    state: MonitorState = MonitorState.DISABLED
    snarfed_lines: int = 0

    def arm(self) -> int:
        """XPoint sent ready; MC enables the monitor and confirms."""
        if self.state is not MonitorState.DISABLED:
            raise RuntimeError("monitor already armed")
        self.state = MonitorState.ARMED
        return SIGNAL_LATENCY_PS

    def snarf(self) -> None:
        """Collect one line off the channel during the reverse write."""
        if self.state is not MonitorState.ARMED:
            raise RuntimeError("snarf without arming the DDR monitor")
        self.state = MonitorState.SNARFING
        self.snarfed_lines += 1

    def complete(self) -> int:
        """XPoint sent completion; monitor disables, MC resumes issue."""
        if self.state not in (MonitorState.ARMED, MonitorState.SNARFING):
            raise RuntimeError("completion for an inactive monitor")
        self.state = MonitorState.DISABLED
        return SIGNAL_LATENCY_PS
