"""The full Ohm memory system: six controller slices behind a page
interleave (Figure 6b)."""

from __future__ import annotations

from typing import List, Sequence

from repro.config import SystemConfig
from repro.core.slices import SliceBase
from repro.sim.records import MemRequest
from repro.sim.stats import Stats


class MemorySystem:
    """Routes requests to memory-controller slices by page interleave."""

    def __init__(self, cfg: SystemConfig, slices: Sequence[SliceBase], stats: Stats) -> None:
        if not slices:
            raise ValueError("need at least one slice")
        self.cfg = cfg
        self.slices: List[SliceBase] = list(slices)
        self.stats = stats
        self.page_bytes = cfg.hetero.page_bytes
        self._num_slices = len(self.slices)

    def route(self, addr: int) -> tuple[SliceBase, int]:
        """Global address -> (slice, slice-local address)."""
        if addr < 0:
            raise ValueError("negative address")
        page, offset = divmod(addr, self.page_bytes)
        n = self._num_slices
        slice_id = page % n
        local_page = page // n
        return self.slices[slice_id], local_page * self.page_bytes + offset

    def serve_addr(self, addr: int, is_write: bool, now_ps: int) -> int:
        """Serve a bare demand access; returns its completion time.

        The per-event entry point: interleave arithmetic inline, no
        request record required.
        """
        if addr < 0:
            raise ValueError("negative address")
        page, offset = divmod(addr, self.page_bytes)
        n = self._num_slices
        return self.slices[page % n].serve(
            (page // n) * self.page_bytes + offset, is_write, now_ps
        )

    def serve(self, req: MemRequest, now_ps: int) -> int:
        """Serve a demand request; returns its completion time."""
        complete = self.serve_addr(req.addr, req.is_write, now_ps)
        req.complete_ps = complete
        return complete
