"""The seven evaluated GPU platforms (Section VI) and their builders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.channel.base import ChannelPort
from repro.channel.electrical import ElectricalChannel
from repro.config import MemoryMode, SystemConfig
from repro.core.functions import CAPS_AUTO_RW, CAPS_BW, CAPS_NONE, CAPS_WOM, MigrationCaps
from repro.core.memsystem import MemorySystem
from repro.core.slices import DramOnlySlice, OriginSlice, PlanarSlice, TwoLevelSlice
from repro.dram.device import DramDevice
from repro.hoststorage.pcie import HostLink
from repro.optical.channel import OpticalChannel
from repro.sim.stats import Stats
from repro.xpoint.controller import XPointController


@dataclass(frozen=True)
class Platform:
    """A named system configuration from the evaluation."""

    name: str
    channel: str  # "electrical" | "optical"
    memory: str  # "dram_small" | "hetero" | "dram_oracle"
    caps: MigrationCaps

    @property
    def laser_scale(self) -> float:
        if self.channel != "optical":
            return 0.0
        return self.caps.laser_scale

    @property
    def uses_optical(self) -> bool:
        return self.channel == "optical"

    @property
    def uses_xpoint(self) -> bool:
        return self.memory == "hetero"


PLATFORMS: Dict[str, Platform] = {
    "Origin": Platform("Origin", "electrical", "dram_small", CAPS_NONE),
    "Hetero": Platform("Hetero", "electrical", "hetero", CAPS_NONE),
    "Ohm-base": Platform("Ohm-base", "optical", "hetero", CAPS_NONE),
    "Auto-rw": Platform("Auto-rw", "optical", "hetero", CAPS_AUTO_RW),
    "Ohm-WOM": Platform("Ohm-WOM", "optical", "hetero", CAPS_WOM),
    "Ohm-BW": Platform("Ohm-BW", "optical", "hetero", CAPS_BW),
    "Oracle": Platform("Oracle", "optical", "dram_oracle", CAPS_NONE),
}


def _channel_ports(
    platform: Platform, cfg: SystemConfig, stats: Stats
) -> list[ChannelPort]:
    n = cfg.electrical.num_channels
    if platform.channel == "electrical":
        return [
            ElectricalChannel(
                cfg.electrical,
                stats,
                name=f"echan{i}",
                bandwidth_scale_down=cfg.bandwidth_scale_down,
            )
            for i in range(n)
        ]
    optical = OpticalChannel(
        cfg.optical,
        stats,
        dual_routes=platform.caps.dual_routes,
        wom_coded=platform.caps.wom_coded,
        bandwidth_scale_down=cfg.bandwidth_scale_down,
    )
    return [optical.vchannel_for_controller(i) for i in range(n)]


def build_memory_system(
    platform: Platform,
    cfg: SystemConfig,
    stats: Optional[Stats] = None,
    host: Optional[HostLink] = None,
) -> MemorySystem:
    """Instantiate the platform's memory system for one run."""
    stats = stats if stats is not None else Stats()
    ports = _channel_ports(platform, cfg, stats)
    n = len(ports)
    slices = []
    dram_slice_cap = max(cfg.hetero.page_bytes, cfg.dram_capacity // n)
    xp_slice_cap = max(cfg.hetero.page_bytes, cfg.xpoint_capacity // n)
    if platform.memory == "dram_small" and host is None:
        # One PCIe link shared by all MCs.
        host = HostLink(
            cfg.host, stats, bandwidth_scale_down=cfg.host_bandwidth_scale_down
        )
    for i, port in enumerate(ports):
        name = f"mc{i}"
        if platform.memory == "dram_small":
            dram = DramDevice(cfg.dram_timing, dram_slice_cap, stats, name=f"{name}.dram")
            slices.append(OriginSlice(cfg, port, dram, host, stats, name))
        elif platform.memory == "dram_oracle":
            dram = DramDevice(
                cfg.dram_timing, dram_slice_cap + xp_slice_cap, stats, name=f"{name}.dram"
            )
            slices.append(DramOnlySlice(cfg, port, dram, stats, name))
        elif platform.memory == "hetero":
            dram = DramDevice(cfg.dram_timing, dram_slice_cap, stats, name=f"{name}.dram")
            xp = XPointController(cfg.xpoint, xp_slice_cap, stats, name=f"{name}.xp")
            slice_cls = (
                PlanarSlice if cfg.hetero.mode is MemoryMode.PLANAR else TwoLevelSlice
            )
            slices.append(slice_cls(cfg, port, dram, xp, platform.caps, stats, name))
        else:
            raise ValueError(f"unknown memory organization {platform.memory!r}")
    return MemorySystem(cfg, slices, stats)
