"""Electrical memory channel (the Origin / Hetero baseline).

One 32-bit lane bundle at 15 GHz per memory controller (Table I).  The
electrical bus has no second route: migrations and demand requests
serialize, which is exactly the bottleneck Ohm-GPU attacks.  Energy is
charged per bit at the electrical-lane rate (~10x the optical rate).
"""

from __future__ import annotations

from repro.channel.base import ChannelPort, RouteKind, TransferResult
from repro.config import ElectricalChannelConfig
from repro.sim.records import RequestKind
from repro.sim.stats import Stats


class ElectricalChannel(ChannelPort):
    """A single electrical channel slice owned by one memory controller."""

    def __init__(
        self,
        cfg: ElectricalChannelConfig,
        stats: Stats,
        name: str = "echan",
        bandwidth_scale_down: int = 1,
    ) -> None:
        super().__init__(name, stats)
        self.cfg = cfg
        # bits per picosecond = lane_bits * freq_GHz / 1000
        self._bits_per_ps = (
            cfg.lane_bits * cfg.freq_ghz / 1000.0 / bandwidth_scale_down
        )
        self._busy_until = 0

    @property
    def dual_routes(self) -> bool:
        return False

    @property
    def bits_per_ps(self) -> float:
        return self._bits_per_ps

    def transfer(
        self,
        now_ps: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> TransferResult:
        if bits <= 0:
            raise ValueError("transfer needs a positive bit count")
        start = max(now_ps, self._busy_until)
        duration = max(1, int(round(bits / self._bits_per_ps)))
        end = start + duration
        self._busy_until = end
        self._account(kind, RouteKind.DATA, bits, duration)
        self.stats.add(f"{self.name}.energy_pj", bits * self.cfg.energy_pj_per_bit)
        return TransferResult(start_ps=start, end_ps=end)

    def busy_until(self, route: RouteKind = RouteKind.DATA) -> int:
        return self._busy_until
