"""Electrical memory channel (the Origin / Hetero baseline).

One 32-bit lane bundle at 15 GHz per memory controller (Table I).  The
electrical bus has no second route: migrations and demand requests
serialize, which is exactly the bottleneck Ohm-GPU attacks.  Energy is
charged per bit at the electrical-lane rate (~10x the optical rate).
"""

from __future__ import annotations

from repro.channel.base import ChannelPort, RouteKind
from repro.config import ElectricalChannelConfig
from repro.sim.records import RequestKind
from repro.sim.stats import Stats


class ElectricalChannel(ChannelPort):  # reprolint: allow(R2) inherits ChannelPort's instance-__dict__ audit seam (transfer_window rebinding)
    """A single electrical channel slice owned by one memory controller."""

    def __init__(
        self,
        cfg: ElectricalChannelConfig,
        stats: Stats,
        name: str = "echan",
        bandwidth_scale_down: int = 1,
    ) -> None:
        super().__init__(name, stats)
        self.cfg = cfg
        # bits per picosecond = lane_bits * freq_GHz / 1000
        self._bits_per_ps = (
            cfg.lane_bits * cfg.freq_ghz / 1000.0 / bandwidth_scale_down
        )
        self._busy = 0
        self._k_energy = f"{name}.energy_pj"
        self._energy_pj_per_bit = cfg.energy_pj_per_bit

    @property
    def dual_routes(self) -> bool:
        return False

    @property
    def bits_per_ps(self) -> float:
        return self._bits_per_ps

    def transfer_window(
        self,
        now_ps: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> tuple[int, int]:
        if bits <= 0:
            raise ValueError("transfer needs a positive bit count")
        busy = self._busy
        start = now_ps if now_ps > busy else busy
        duration = int(round(bits / self._bits_per_ps))
        if duration < 1:
            duration = 1
        end = start + duration
        self._busy = end
        counters = self._cdict
        k_bits, k_busy = self._kind_keys[kind]
        counters[k_bits] += bits
        counters[k_busy] += duration
        counters[self._k_route_data] += duration
        counters[self._k_transfers] += 1
        counters[self._k_energy] += bits * self._energy_pj_per_bit
        return start, end

    def demand_data_window(
        self, now_ps: int, bits: int, duration_ps: int, device: int = 0
    ) -> int:
        """Inline of :meth:`transfer_window` for DEMAND traffic.

        Accounting-identical (same keys, same order); the enum-keyed
        lookup and per-call duration rounding are hoisted out.
        """
        busy = self._busy
        start = now_ps if now_ps > busy else busy
        end = start + duration_ps
        self._busy = end
        counters = self._cdict
        counters[self._k_demand_bits] += bits
        counters[self._k_demand_busy] += duration_ps
        counters[self._k_route_data] += duration_ps
        counters[self._k_transfers] += 1
        counters[self._k_energy] += bits * self._energy_pj_per_bit
        return end

    def busy_until(self, route: RouteKind = RouteKind.DATA) -> int:
        return self._busy
