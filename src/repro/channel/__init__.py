"""Memory-channel abstractions shared by the electrical baseline and the
optical network: a channel port is the resource a memory controller
occupies to move bits to/from memory devices."""

from repro.channel.base import ChannelPort, RouteKind, TransferResult
from repro.channel.electrical import ElectricalChannel

__all__ = ["ChannelPort", "RouteKind", "TransferResult", "ElectricalChannel"]
