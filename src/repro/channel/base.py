"""Channel-port interface.

A :class:`ChannelPort` is what a memory controller sees: a resource that
serializes transfers.  The optical implementation adds a second,
independent *memory route* (the paper's dual routes); the electrical
implementation folds everything onto one bus.

Every transfer is tagged with a :class:`~repro.sim.records.RequestKind`
so the harness can split channel time into demand vs migration traffic
(Figures 8 and 18).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.sim.records import RequestKind
from repro.sim.stats import Stats


class RouteKind(enum.Enum):
    DATA = "data"  # memory controller <-> memory devices
    MEMORY = "memory"  # memory device <-> memory device (dual route)


@dataclass(frozen=True)
class TransferResult:
    start_ps: int
    end_ps: int

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


class ChannelPort(abc.ABC):
    """One memory controller's view of its channel slice."""

    def __init__(self, name: str, stats: Stats) -> None:
        self.name = name
        self.stats = stats

    @property
    @abc.abstractmethod
    def dual_routes(self) -> bool:
        """Whether device-to-device transfers bypass the data route."""

    @abc.abstractmethod
    def transfer(
        self,
        now_ps: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> TransferResult:
        """Occupy the channel for ``bits``; returns the occupancy window."""

    @abc.abstractmethod
    def busy_until(self, route: RouteKind = RouteKind.DATA) -> int:
        """Earliest time a new transfer could start on ``route``."""

    def _account(
        self, kind: RequestKind, route: RouteKind, bits: int, duration_ps: int
    ) -> None:
        self.stats.add(f"{self.name}.bits.{kind.value}", bits)
        self.stats.add(f"{self.name}.busy_ps.{kind.value}", duration_ps)
        self.stats.add(f"{self.name}.busy_ps.route.{route.value}", duration_ps)
        self.stats.add(f"{self.name}.transfers", 1)
