"""Channel-port interface.

A :class:`ChannelPort` is what a memory controller sees: a resource that
serializes transfers.  The optical implementation adds a second,
independent *memory route* (the paper's dual routes); the electrical
implementation folds everything onto one bus.

Every transfer is tagged with a :class:`~repro.sim.records.RequestKind`
so the harness can split channel time into demand vs migration traffic
(Figures 8 and 18).

Hot-path shape: ports pre-format all their stat keys **once at
construction** (see the plumbing in :meth:`ChannelPort.__init__`), so
accounting a transfer is a handful of ``dict[key] += v`` updates — no
name formatting per event.  Subclasses implement
:meth:`transfer_window`, which returns a plain ``(start_ps, end_ps)``
tuple; the memory-system slices call it directly so the per-event path
allocates nothing.  :meth:`transfer` wraps the same window in a
:class:`TransferResult` for callers that want the richer record.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.sim.records import RequestKind
from repro.sim.stats import Stats


class RouteKind(enum.Enum):
    DATA = "data"  # memory controller <-> memory devices
    MEMORY = "memory"  # memory device <-> memory device (dual route)


@dataclass(slots=True, unsafe_hash=True)
class TransferResult:
    """One channel occupancy window.

    Slotted but *not* frozen: a frozen dataclass pays an
    ``object.__setattr__`` per field per construction, which matters for
    records built on the per-event path.
    """

    start_ps: int
    end_ps: int

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


class ChannelPort(abc.ABC):  # reprolint: allow(R2) audit rebinds transfer_window on port instances (sim/audit.py instrument), which needs __dict__
    """One memory controller's view of its channel slice."""

    def __init__(self, name: str, stats: Stats) -> None:
        self.name = name
        self.stats = stats
        # Accounting plumbing for subclass hot loops: the shared
        # counter dict plus pre-formatted key strings, so one transfer
        # costs four ``dict[key] += v`` updates and a single enum-keyed
        # lookup — no per-call handle dispatch.
        self._cdict = stats.counters
        self._kind_keys = {
            k: (f"{name}.bits.{k.value}", f"{name}.busy_ps.{k.value}")
            for k in RequestKind
        }
        self._k_route_data = f"{name}.busy_ps.route.{RouteKind.DATA.value}"
        self._k_route_mem = f"{name}.busy_ps.route.{RouteKind.MEMORY.value}"
        self._k_transfers = f"{name}.transfers"
        # The demand fast path skips the enum-keyed lookup entirely:
        # DEMAND's two keys are resolved here, once.
        self._k_demand_bits, self._k_demand_busy = self._kind_keys[
            RequestKind.DEMAND
        ]

    def accounting(self, counters: dict) -> dict:
        """The port's ledger, read back from a counter snapshot.

        The key scheme (``<name>.bits.<kind>``, ``<name>.busy_ps.<kind>``,
        ``<name>.busy_ps.route.<route>``, ``<name>.transfers``) is owned
        here, so the audit layer (``sim/audit.py``) never re-derives
        counter names: every subclass's ``transfer_window`` must keep

        * ``bits`` equal to the bits actually offered to the port
          (bytes-in == bytes-out),
        * ``windows`` equal to the windows it opened, and
        * ``kind_busy_ps == route_busy_ps`` — each window charges its
          occupancy to exactly one traffic kind *and* one route.
        """
        return {
            "bits": sum(
                counters.get(k_bits, 0.0)
                for k_bits, _ in self._kind_keys.values()
            ),
            "windows": counters.get(self._k_transfers, 0.0),
            "kind_busy_ps": sum(
                counters.get(k_busy, 0.0)
                for _, k_busy in self._kind_keys.values()
            ),
            "route_busy_ps": counters.get(self._k_route_data, 0.0)
            + counters.get(self._k_route_mem, 0.0),
        }

    @property
    @abc.abstractmethod
    def dual_routes(self) -> bool:
        """Whether device-to-device transfers bypass the data route."""

    @abc.abstractmethod
    def transfer_window(
        self,
        now_ps: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> tuple[int, int]:
        """Occupy the channel for ``bits``; returns ``(start_ps, end_ps)``."""

    def data_duration_ps(self, bits: int) -> int:
        """Full-rate occupancy of a ``bits`` transfer on the data route.

        Demand requests move fixed-size payloads (the command beat and
        one cache line), so slices precompute these two durations once
        and pass them into :meth:`demand_data_window` — the
        ``int(round(...))`` per transfer disappears from the hot path.
        """
        duration = int(round(bits / self._bits_per_ps))
        return duration if duration >= 1 else 1

    def demand_data_window(
        self, now_ps: int, bits: int, duration_ps: int, device: int = 0
    ) -> int:
        """Specialized DEMAND transfer on the DATA route; returns the end time.

        ``duration_ps`` must be ``data_duration_ps(bits)`` — precomputed
        by the caller.  Subclasses override this with an arithmetic-
        and accounting-identical inline of their ``transfer_window``
        DEMAND/DATA case; this default just routes through
        :meth:`transfer_window` so any port supports the interface.
        """
        return self.transfer_window(
            now_ps, bits, RequestKind.DEMAND, RouteKind.DATA, device
        )[1]

    def transfer(
        self,
        now_ps: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> TransferResult:
        """Like :meth:`transfer_window`, wrapped in a record object."""
        start, end = self.transfer_window(now_ps, bits, kind, route, device)
        return TransferResult(start_ps=start, end_ps=end)

    @abc.abstractmethod
    def busy_until(self, route: RouteKind = RouteKind.DATA) -> int:
        """Earliest time a new transfer could start on ``route``."""
