"""MRR layout calculator (Figure 15 / Section V-C).

The general dual-route design needs, per DRAM+XPoint pair and per
bit-lane:

* DRAM: one conventional Tx/Rx pair, half-coupled receivers on both the
  forward and backward paths (auto-read/write + reverse-write) and a
  half-coupled transmitter (swap) -> 3 Tx + 3 Rx;
* XPoint: a conventional Tx/Rx pair, half-coupled receivers on both
  paths and a half-coupled transmitter -> 2 Tx + 3 Rx;
* plus three optional transmitters (T9–T11) that only add scheduling
  parallelism.

The per-mode customization keeps only what that mode's functions use:
planar mode runs just the swap function; two-level mode runs
auto-read/write + reverse-write.  The resulting reductions — 58 % and
42 % — are the paper's headline Fig. 15 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MemoryMode


@dataclass(frozen=True)
class MrrLayout:
    """MRR counts per DRAM+XPoint device pair, per bit-lane."""

    label: str
    dram_tx: int
    dram_rx: int
    xpoint_tx: int
    xpoint_rx: int
    parallelism_tx: int = 0

    @property
    def transmitters(self) -> int:
        return self.dram_tx + self.xpoint_tx + self.parallelism_tx

    @property
    def receivers(self) -> int:
        return self.dram_rx + self.xpoint_rx

    @property
    def total(self) -> int:
        return self.transmitters + self.receivers

    def reduction_vs(self, other: "MrrLayout") -> float:
        """Fractional MRR saving of ``self`` relative to ``other``."""
        if other.total == 0:
            raise ValueError("reference layout has no MRRs")
        return 1.0 - self.total / other.total


# Figure 15a: everything, including the optional T9-T11 transmitters.
GENERAL_LAYOUT = MrrLayout(
    label="general",
    dram_tx=3,  # conventional + half-coupled (swap) + backward conventional
    dram_rx=3,  # conventional + half-coupled fwd + half-coupled back
    xpoint_tx=2,  # conventional + half-coupled (swap)
    xpoint_rx=3,  # conventional + half-coupled fwd + half-coupled back
    parallelism_tx=3,  # T9-T11, scheduling parallelism only
)

# Conventional photonic link, no dual routes (Ohm-base).
BASELINE_LAYOUT = MrrLayout(
    label="ohm-base", dram_tx=1, dram_rx=1, xpoint_tx=1, xpoint_rx=1
)

# Planar memory mode only needs the swap function: conventional pairs
# plus half-coupled *transmitters* on DRAM and XPoint.
PLANAR_LAYOUT = MrrLayout(
    label="planar", dram_tx=2, dram_rx=1, xpoint_tx=2, xpoint_rx=1
)

# Two-level mode needs auto-read/write + reverse-write: conventional
# pairs plus half-coupled *receivers* on the forward and backward paths.
TWO_LEVEL_LAYOUT = MrrLayout(
    label="two-level", dram_tx=1, dram_rx=3, xpoint_tx=1, xpoint_rx=3
)


def layout_for_mode(mode: MemoryMode) -> MrrLayout:
    """Customized (Fig. 15b) layout for an operating mode."""
    return PLANAR_LAYOUT if mode is MemoryMode.PLANAR else TWO_LEVEL_LAYOUT


def mode_reduction(mode: MemoryMode) -> float:
    """Fig. 15 claim: 58 % (planar) / 42 % (two-level) fewer MRRs than
    the general design."""
    return layout_for_mode(mode).reduction_vs(GENERAL_LAYOUT)
