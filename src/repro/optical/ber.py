"""Bit-error-rate estimation for the optical channel (Fig. 20b).

BER in an optical link follows the Gaussian Q-factor model
``BER = 0.5 * erfc(Q / sqrt(2))`` with Q proportional to the square root
of received power at the photonic detector [39].  The proportionality
constant is calibrated so the default configuration (0.73 mW laser,
Table I losses) lands at the paper's measured 7.2e-16 for Ohm-base —
after that single anchor, every other platform's BER follows from its
link budget alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import OpticalChannelConfig
from repro.optical.power import LinkPath, OpticalPowerModel

RELIABILITY_REQUIREMENT = 1e-15
ANCHOR_BER = 7.2e-16  # Ohm-base rd/wr, paper Section VI-B


def q_to_ber(q: float) -> float:
    """Gaussian Q-factor to bit error rate."""
    if q < 0:
        raise ValueError("Q must be non-negative")
    return 0.5 * math.erfc(q / math.sqrt(2.0))


def ber_to_q(ber: float) -> float:
    """Invert :func:`q_to_ber` by bisection."""
    if not 0 < ber < 0.5:
        raise ValueError("BER must be in (0, 0.5)")
    lo, hi = 0.0, 40.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if q_to_ber(mid) > ber:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass
class BerModel:
    """Receiver model: Q = sensitivity * sqrt(received power in mW)."""

    sensitivity_q_per_sqrt_mw: float

    @classmethod
    def calibrated(cls, cfg: OpticalChannelConfig) -> "BerModel":
        """Anchor the sensitivity at the paper's Ohm-base BER."""
        anchor_power = OpticalPowerModel(cfg).demand_path().received_power_mw
        q = ber_to_q(ANCHOR_BER)
        return cls(sensitivity_q_per_sqrt_mw=q / math.sqrt(anchor_power))

    def ber(self, received_power_mw: float) -> float:
        if received_power_mw <= 0:
            return 0.5  # no light: coin-flip detection
        q = self.sensitivity_q_per_sqrt_mw * math.sqrt(received_power_mw)
        return q_to_ber(q)

    def ber_for_path(self, path: LinkPath) -> float:
        return self.ber(path.received_power_mw)

    def meets_requirement(self, path: LinkPath) -> bool:
        return self.ber_for_path(path) <= RELIABILITY_REQUIREMENT


@dataclass(frozen=True)
class LinkBudget:
    """Named BER results for one platform configuration (Fig. 20b rows)."""

    label: str
    ber: float
    received_power_mw: float
    laser_scale: float

    @property
    def reliable(self) -> bool:
        return self.ber <= RELIABILITY_REQUIREMENT


def figure20b_budgets(cfg: OpticalChannelConfig) -> list[LinkBudget]:
    """All Fig. 20b bars: Ohm-base rd/wr, Ohm-WOM rd/wr + auto + swap,
    Ohm-BW rd/wr + auto + swap."""
    power = OpticalPowerModel(cfg)
    model = BerModel.calibrated(cfg)

    def budget(label: str, path: LinkPath, scale: float) -> LinkBudget:
        return LinkBudget(
            label=label,
            ber=model.ber_for_path(path),
            received_power_mw=path.received_power_mw,
            laser_scale=scale,
        )

    return [
        budget("Ohm-base rd/wr", power.demand_path(1.0), 1.0),
        budget("Ohm-WOM rd/wr", power.demand_path(2.0), 2.0),
        budget("Ohm-WOM auto", power.auto_rw_path(2.0), 2.0),
        budget("Ohm-WOM swap", power.swap_wom_path(2.0), 2.0),
        budget("Ohm-BW rd/wr", power.demand_path(4.0), 4.0),
        budget("Ohm-BW auto", power.auto_rw_path(4.0), 4.0),
        budget("Ohm-BW swap", power.swap_bw_path(4.0), 4.0),
    ]
