"""SerDes circuit in front of each memory device (Figure 6c).

Command/address/data are parallel inside DRAM/XPoint but serial on the
waveguide; the SerDes converts between the two and a 16 KB register
buffers in-flight data.  The model charges a fixed serialization
latency plus a buffer-occupancy check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import KB

SERDES_LATENCY_PS = 200  # serializer + deserializer pipeline


@dataclass
class SerDes:
    """Serializer/deserializer with a small device-side register."""

    buffer_bytes: int = 16 * KB
    occupied_bytes: int = 0
    total_serialized_bits: int = 0

    def can_accept(self, payload_bytes: int) -> bool:
        return self.occupied_bytes + payload_bytes <= self.buffer_bytes

    def push(self, payload_bytes: int) -> int:
        """Accept a payload into the device-side register.

        Returns the serialization latency in ps.  Raises if the register
        is full — the channel layer must back-pressure first.
        """
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        if not self.can_accept(payload_bytes):
            raise BufferError(
                f"SerDes register full ({self.occupied_bytes}/{self.buffer_bytes} B)"
            )
        self.occupied_bytes += payload_bytes
        self.total_serialized_bits += payload_bytes * 8
        return SERDES_LATENCY_PS

    def pop(self, payload_bytes: int) -> None:
        """Drain a payload out of the register into the device core."""
        if payload_bytes > self.occupied_bytes:
            raise ValueError("draining more than buffered")
        self.occupied_bytes -= payload_bytes
