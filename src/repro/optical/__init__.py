"""Silicon nano-photonic substrate (Sections II-D, IV-C, V-B/C).

Models micro-ring resonators (including the half-coupled state that
enables dual routes), DWDM wavelength allocation, virtual channels with
photonic-demux arbitration, WOM coding, the optical link power budget,
bit-error-rate estimation and the Figure-15 MRR layout calculator.
"""

from repro.optical.ber import BerModel, LinkBudget
from repro.optical.channel import OpticalChannel, RouteKind, VirtualChannel
from repro.optical.dynamic import DynamicWavelengthAllocator
from repro.optical.layout import MrrLayout, layout_for_mode
from repro.optical.mrr import CouplingState, MicroRingResonator
from repro.optical.power import OpticalPowerModel
from repro.optical.serdes import SerDes
from repro.optical.waveguide import Waveguide
from repro.optical.wavelength import WavelengthAllocator
from repro.optical.wom import WomCodec

__all__ = [
    "MicroRingResonator",
    "CouplingState",
    "Waveguide",
    "WavelengthAllocator",
    "OpticalChannel",
    "VirtualChannel",
    "RouteKind",
    "SerDes",
    "WomCodec",
    "OpticalPowerModel",
    "LinkBudget",
    "BerModel",
    "MrrLayout",
    "layout_for_mode",
    "DynamicWavelengthAllocator",
]
