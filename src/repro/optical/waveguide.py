"""Photonic waveguide: the transmission medium plus its loss budget."""

from __future__ import annotations

from dataclasses import dataclass


def db_to_fraction(db: float) -> float:
    """Convert a dB loss into the surviving power fraction.

    >>> round(db_to_fraction(3.0), 3)
    0.501
    """
    return 10.0 ** (-db / 10.0)


@dataclass(frozen=True)
class Waveguide:
    """A waveguide segment with distance-proportional loss."""

    length_cm: float
    loss_db_per_cm: float = 0.3

    @property
    def loss_db(self) -> float:
        return self.length_cm * self.loss_db_per_cm

    def propagate(self, power_mw: float) -> float:
        """Power remaining after traversing the full segment."""
        if power_mw < 0:
            raise ValueError("negative optical power")
        return power_mw * db_to_fraction(self.loss_db)

    def propagate_partial(self, power_mw: float, distance_cm: float) -> float:
        """Power remaining after ``distance_cm`` of this guide."""
        if not 0 <= distance_cm <= self.length_cm:
            raise ValueError("distance outside the waveguide")
        return power_mw * db_to_fraction(distance_cm * self.loss_db_per_cm)
