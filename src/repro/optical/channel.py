"""Optical channel with virtual channels, arbitration and dual routes.

The single waveguide carries 96 wavelengths at 30 GHz (Table I).  Static
channel division slices them into six 16-bit virtual channels, one per
memory controller, so controllers never conflict (Section III-A).
Within a virtual channel, the photonic demultiplexer enables exactly one
device's detector at a time — modelled as a retune penalty whenever the
target device changes.

Dual routes (Section IV-B/V-B): platforms with half-coupled MRRs (or WOM
coding) get an independent *memory route* for device-to-device
migration.  On Ohm-WOM, while a swap rides the data route via WOM
coding, the route's effective width drops to 2/3.

This is the single busiest component in a simulation (two-plus transfers
per demand request), so :meth:`VirtualChannel.transfer_window` is
written hot-path style: route state lives in plain attributes selected
by enum identity (no enum-keyed dict hashing), every stat key is a
pre-bound handle, and nothing is allocated per transfer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.channel.base import ChannelPort, RouteKind
from repro.config import OpticalChannelConfig
from repro.optical.mrr import FULL_TUNE_PS
from repro.optical.wavelength import WavelengthAllocator
from repro.optical.wom import EFFECTIVE_BANDWIDTH_FRACTION
from repro.sim.records import RequestKind
from repro.sim.stats import Stats


class VirtualChannel(ChannelPort):
    """One wavelength group: a data route plus an optional memory route."""

    def __init__(
        self,
        cfg: OpticalChannelConfig,
        stats: Stats,
        vchannel_id: int,
        width_bits: int,
        dual_routes: bool,
        wom_coded: bool,
        name: Optional[str] = None,
        bandwidth_scale_down: int = 1,
    ) -> None:
        super().__init__(name or f"ochan{vchannel_id}", stats)
        self.cfg = cfg
        self.vchannel_id = vchannel_id
        self.width_bits = width_bits * cfg.num_waveguides
        self._dual_routes = dual_routes
        self.wom_coded = wom_coded
        self._bits_per_ps = (
            self.width_bits * cfg.freq_ghz / 1000.0 / bandwidth_scale_down
        )
        # Per-route schedule and enabled demux target, kept as plain
        # attributes: the route is selected by enum identity, never by
        # hashing the enum into a dict.
        self._busy_data = 0
        self._busy_mem = 0
        self._dev_data = -1
        self._dev_mem = -1
        # While a WOM-coded swap occupies the light, demand transfers on
        # the data route run at 2/3 width until this timestamp.
        self._wom_active_until = 0
        self._k_demux = f"{self.name}.demux_switches"
        self._k_energy = f"{self.name}.energy_pj"
        self._k_mrr = f"{self.name}.mrr_tuning_pj"
        self._energy_pj_per_bit = cfg.energy_pj_per_bit
        self._mrr_tuning_fj_per_bit = cfg.mrr_tuning_fj_per_bit

    @property
    def dual_routes(self) -> bool:
        return self._dual_routes

    @property
    def bits_per_ps(self) -> float:
        return self._bits_per_ps

    def set_wom_window(self, now_ps: int, duration_ps: int) -> None:
        """Degrade the data route for ``duration_ps`` of channel time.

        While a WOM-coded swap shares the light, demand transfers run at
        2/3 width.  The window is anchored to the data route's own
        schedule: if the route is backlogged, the transfers that overlap
        the swap in real time are the ones at the head of that backlog,
        so the degradation applies there.
        """
        if duration_ps < 0:
            raise ValueError("negative WOM window")
        start = max(now_ps, self._busy_data, self._wom_active_until)
        self._wom_active_until = start + duration_ps

    def transfer_window(
        self,
        now_ps: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> tuple[int, int]:
        if bits <= 0:
            raise ValueError("transfer needs a positive bit count")
        counters = self._cdict
        if route is RouteKind.MEMORY and self._dual_routes:
            start = self._busy_mem
            if now_ps > start:
                start = now_ps
            # Photonic demux arbitration: switching the enabled detector
            # to a different memory device costs one MRR retune.
            if self._dev_mem != device:
                start += FULL_TUNE_PS
                self._dev_mem = device
                counters[self._k_demux] += 1
            duration = int(round(bits / self._bits_per_ps))
            if duration < 1:
                duration = 1
            end = start + duration
            self._busy_mem = end
            counters[self._k_route_mem] += duration
        else:
            # Without an independent route, migrations fall back onto
            # the data route and steal demand bandwidth.
            start = self._busy_data
            if now_ps > start:
                start = now_ps
            if self._dev_data != device:
                start += FULL_TUNE_PS
                self._dev_data = device
                counters[self._k_demux] += 1
            rate = self._bits_per_ps
            if self.wom_coded and start < self._wom_active_until:
                rate *= EFFECTIVE_BANDWIDTH_FRACTION
            duration = int(round(bits / rate))
            if duration < 1:
                duration = 1
            end = start + duration
            self._busy_data = end
            counters[self._k_route_data] += duration
        k_bits, k_busy = self._kind_keys[kind]
        counters[k_bits] += bits
        counters[k_busy] += duration
        counters[self._k_transfers] += 1
        counters[self._k_energy] += bits * self._energy_pj_per_bit
        counters[self._k_mrr] += bits * self._mrr_tuning_fj_per_bit / 1000.0
        return start, end

    def demand_data_window(
        self, now_ps: int, bits: int, duration_ps: int, device: int = 0
    ) -> int:
        """Inline of :meth:`transfer_window`'s DEMAND/DATA case.

        Arithmetic- and accounting-identical (same counter keys in the
        same order, same WOM degradation math); the route selection,
        enum-keyed counter lookup and the per-call ``int(round(...))``
        are replaced by the caller's precomputed ``duration_ps``.
        """
        counters = self._cdict
        start = self._busy_data
        if now_ps > start:
            start = now_ps
        if self._dev_data != device:
            start += FULL_TUNE_PS
            self._dev_data = device
            counters[self._k_demux] += 1
        if self.wom_coded and start < self._wom_active_until:
            duration_ps = int(
                round(bits / (self._bits_per_ps * EFFECTIVE_BANDWIDTH_FRACTION))
            )
            if duration_ps < 1:
                duration_ps = 1
        end = start + duration_ps
        self._busy_data = end
        counters[self._k_route_data] += duration_ps
        counters[self._k_demand_bits] += bits
        counters[self._k_demand_busy] += duration_ps
        counters[self._k_transfers] += 1
        counters[self._k_energy] += bits * self._energy_pj_per_bit
        counters[self._k_mrr] += bits * self._mrr_tuning_fj_per_bit / 1000.0
        return end

    def busy_until(self, route: RouteKind = RouteKind.DATA) -> int:
        if route is RouteKind.MEMORY and self._dual_routes:
            return self._busy_mem
        return self._busy_data


class OpticalChannel:
    """The full waveguide: an allocator plus its virtual channels."""

    def __init__(
        self,
        cfg: OpticalChannelConfig,
        stats: Stats,
        dual_routes: bool = False,
        wom_coded: bool = False,
        bandwidth_scale_down: int = 1,
    ) -> None:
        self.cfg = cfg
        self.stats = stats
        allocator = WavelengthAllocator(
            cfg.channel_width_bits, cfg.num_virtual_channels
        )
        groups = allocator.allocate()
        assert WavelengthAllocator.verify_disjoint(groups)
        self.vchannels: List[VirtualChannel] = [
            VirtualChannel(
                cfg,
                stats,
                g.vchannel_id,
                g.width_bits,
                dual_routes=dual_routes,
                wom_coded=wom_coded,
                bandwidth_scale_down=bandwidth_scale_down,
            )
            for g in groups
        ]

    def vchannel_for_controller(self, mc_id: int) -> VirtualChannel:
        """Static assignment: controller i owns virtual channel i."""
        return self.vchannels[mc_id % len(self.vchannels)]
