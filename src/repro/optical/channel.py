"""Optical channel with virtual channels, arbitration and dual routes.

The single waveguide carries 96 wavelengths at 30 GHz (Table I).  Static
channel division slices them into six 16-bit virtual channels, one per
memory controller, so controllers never conflict (Section III-A).
Within a virtual channel, the photonic demultiplexer enables exactly one
device's detector at a time — modelled as a retune penalty whenever the
target device changes.

Dual routes (Section IV-B/V-B): platforms with half-coupled MRRs (or WOM
coding) get an independent *memory route* for device-to-device
migration.  On Ohm-WOM, while a swap rides the data route via WOM
coding, the route's effective width drops to 2/3.
"""

from __future__ import annotations

from typing import List, Optional

from repro.channel.base import ChannelPort, RouteKind, TransferResult
from repro.config import OpticalChannelConfig
from repro.optical.mrr import FULL_TUNE_PS
from repro.optical.wavelength import WavelengthAllocator
from repro.optical.wom import EFFECTIVE_BANDWIDTH_FRACTION
from repro.sim.records import RequestKind
from repro.sim.stats import Stats


class VirtualChannel(ChannelPort):
    """One wavelength group: a data route plus an optional memory route."""

    def __init__(
        self,
        cfg: OpticalChannelConfig,
        stats: Stats,
        vchannel_id: int,
        width_bits: int,
        dual_routes: bool,
        wom_coded: bool,
        name: Optional[str] = None,
        bandwidth_scale_down: int = 1,
    ) -> None:
        super().__init__(name or f"ochan{vchannel_id}", stats)
        self.cfg = cfg
        self.vchannel_id = vchannel_id
        self.width_bits = width_bits * cfg.num_waveguides
        self._dual_routes = dual_routes
        self.wom_coded = wom_coded
        self._bits_per_ps = (
            self.width_bits * cfg.freq_ghz / 1000.0 / bandwidth_scale_down
        )
        self._busy_until = {RouteKind.DATA: 0, RouteKind.MEMORY: 0}
        self._enabled_device = {RouteKind.DATA: -1, RouteKind.MEMORY: -1}
        # While a WOM-coded swap occupies the light, demand transfers on
        # the data route run at 2/3 width until this timestamp.
        self._wom_active_until = 0

    @property
    def dual_routes(self) -> bool:
        return self._dual_routes

    @property
    def bits_per_ps(self) -> float:
        return self._bits_per_ps

    def set_wom_window(self, now_ps: int, duration_ps: int) -> None:
        """Degrade the data route for ``duration_ps`` of channel time.

        While a WOM-coded swap shares the light, demand transfers run at
        2/3 width.  The window is anchored to the data route's own
        schedule: if the route is backlogged, the transfers that overlap
        the swap in real time are the ones at the head of that backlog,
        so the degradation applies there.
        """
        if duration_ps < 0:
            raise ValueError("negative WOM window")
        start = max(now_ps, self._busy_until[RouteKind.DATA], self._wom_active_until)
        self._wom_active_until = start + duration_ps

    def _effective_bits_per_ps(self, route: RouteKind, start_ps: int) -> float:
        rate = self._bits_per_ps
        if (
            self.wom_coded
            and route is RouteKind.DATA
            and start_ps < self._wom_active_until
        ):
            rate *= EFFECTIVE_BANDWIDTH_FRACTION
        return rate

    def transfer(
        self,
        now_ps: int,
        bits: int,
        kind: RequestKind,
        route: RouteKind = RouteKind.DATA,
        device: int = 0,
    ) -> TransferResult:
        if bits <= 0:
            raise ValueError("transfer needs a positive bit count")
        if route is RouteKind.MEMORY and not self._dual_routes:
            # No independent route on this platform: migrations fall back
            # onto the data route and steal demand bandwidth.
            route = RouteKind.DATA
        start = max(now_ps, self._busy_until[route])
        # Photonic demux arbitration: switching the enabled detector to a
        # different memory device costs one MRR retune.
        if self._enabled_device[route] != device:
            start += FULL_TUNE_PS
            self._enabled_device[route] = device
            self.stats.add(f"{self.name}.demux_switches")
        duration = max(1, int(round(bits / self._effective_bits_per_ps(route, start))))
        end = start + duration
        self._busy_until[route] = end
        self._account(kind, route, bits, duration)
        self.stats.add(f"{self.name}.energy_pj", bits * self.cfg.energy_pj_per_bit)
        self.stats.add(
            f"{self.name}.mrr_tuning_pj", bits * self.cfg.mrr_tuning_fj_per_bit / 1000.0
        )
        return TransferResult(start_ps=start, end_ps=end)

    def busy_until(self, route: RouteKind = RouteKind.DATA) -> int:
        if route is RouteKind.MEMORY and not self._dual_routes:
            route = RouteKind.DATA
        return self._busy_until[route]


class OpticalChannel:
    """The full waveguide: an allocator plus its virtual channels."""

    def __init__(
        self,
        cfg: OpticalChannelConfig,
        stats: Stats,
        dual_routes: bool = False,
        wom_coded: bool = False,
        bandwidth_scale_down: int = 1,
    ) -> None:
        self.cfg = cfg
        self.stats = stats
        allocator = WavelengthAllocator(
            cfg.channel_width_bits, cfg.num_virtual_channels
        )
        groups = allocator.allocate()
        assert WavelengthAllocator.verify_disjoint(groups)
        self.vchannels: List[VirtualChannel] = [
            VirtualChannel(
                cfg,
                stats,
                g.vchannel_id,
                g.width_bits,
                dual_routes=dual_routes,
                wom_coded=wom_coded,
                bandwidth_scale_down=bandwidth_scale_down,
            )
            for g in groups
        ]

    def vchannel_for_controller(self, mc_id: int) -> VirtualChannel:
        """Static assignment: controller i owns virtual channel i."""
        return self.vchannels[mc_id % len(self.vchannels)]
