"""Optical link power budget (Table I, "Optical power model").

Losses compose in dB along the light path: active modulation (up to
1 dB), waveguide propagation (0.3 dB/cm), the comb filter drop (1.5 dB),
optical splitters (0.2 dB), the detector (0.1 dB) and — on Ohm-GPU's
dual-route paths — the ~3 dB of a half-coupled ring that forwards half
of the light.  The received power feeds the BER model (Fig. 20b) and the
laser+tuning energy feeds the Fig. 19 energy breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import OpticalChannelConfig
from repro.optical.waveguide import db_to_fraction

# dB cost of a half-coupled MRR forwarding (or sensing) half the light.
# An exact 50/50 split is 3.0103 dB; the ring is tuned marginally in
# favour of its own detector (calibrated against the paper's measured
# 6.1e-16 auto-read/write BER at 2x laser power).
HALF_COUPLE_DB = 2.9881
# Level-detection margin when WOM coding packs two writers' data into
# one light signal (calibrated to the paper's 9.9e-16 swap BER).
WOM_LEVEL_MARGIN_DB = 3.0533
# Extra sensing-margin penalty when a second writer re-modulates the
# residual light on Ohm-BW (calibrated to the paper's 9.3e-16).
REMODULATION_MARGIN_DB = 0.0789


@dataclass
class LinkPath:
    """An ordered list of named dB losses along one light path."""

    laser_power_mw: float
    losses: List[tuple[str, float]] = field(default_factory=list)

    def add(self, name: str, loss_db: float) -> "LinkPath":
        if loss_db < 0:
            raise ValueError(f"loss must be non-negative, got {loss_db}")
        self.losses.append((name, loss_db))
        return self

    @property
    def total_loss_db(self) -> float:
        return sum(db for _, db in self.losses)

    @property
    def received_power_mw(self) -> float:
        return self.laser_power_mw * db_to_fraction(self.total_loss_db)


class OpticalPowerModel:
    """Builds the link paths used by the evaluated platforms."""

    def __init__(self, cfg: OpticalChannelConfig) -> None:
        self.cfg = cfg

    def _base_path(self, laser_mw: float) -> LinkPath:
        path = LinkPath(laser_power_mw=laser_mw)
        path.add("modulator", self.cfg.modulator_loss_db)
        path.add("waveguide", self.cfg.waveguide_length_cm * self.cfg.waveguide_loss_db_per_cm)
        path.add("filter_drop", self.cfg.filter_drop_db)
        path.add("splitter", self.cfg.splitter_loss_db)
        path.add("detector", self.cfg.detector_loss_db)
        return path

    def demand_path(self, laser_scale: float = 1.0) -> LinkPath:
        """Conventional MC -> device read/write transfer."""
        return self._base_path(self.cfg.laser_power_mw * laser_scale)

    def auto_rw_path(self, laser_scale: float = 2.0) -> LinkPath:
        """Snarf path: the XPoint controller's half-coupled receiver
        absorbs half of the MC->DRAM light (auto-read/write)."""
        return self._base_path(self.cfg.laser_power_mw * laser_scale).add(
            "half_coupled_rx", HALF_COUPLE_DB
        )

    def swap_wom_path(self, laser_scale: float = 2.0) -> LinkPath:
        """WOM-coded swap: two writers share the light, halving the
        level-detection margin and adding a re-modulation penalty."""
        return self._base_path(self.cfg.laser_power_mw * laser_scale).add(
            "wom_level_margin", WOM_LEVEL_MARGIN_DB
        )

    def swap_bw_path(self, laser_scale: float = 4.0) -> LinkPath:
        """Ohm-BW: half-coupled transmitter (light keeps >= half power on
        a 0) plus a half-coupled receiver, plus the re-modulation margin."""
        return (
            self._base_path(self.cfg.laser_power_mw * laser_scale)
            .add("half_coupled_tx", HALF_COUPLE_DB)
            .add("half_coupled_rx", HALF_COUPLE_DB)
            .add("remodulation", REMODULATION_MARGIN_DB)
        )

    def laser_power_w(self, laser_scale: float, wavelengths: int) -> float:
        """Total laser wall power across the wavelength comb (watts)."""
        return self.cfg.laser_power_mw * laser_scale * wavelengths / 1000.0
