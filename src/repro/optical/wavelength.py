"""DWDM wavelength bookkeeping.

The optical channel carries ``channel_width_bits`` wavelengths in one
waveguide; the *static channel division* policy (Table I) slices them
into contiguous groups, one virtual channel per memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class WavelengthGroup:
    """A contiguous run of wavelength indices forming one virtual channel."""

    vchannel_id: int
    wavelengths: tuple[int, ...]

    @property
    def width_bits(self) -> int:
        return len(self.wavelengths)


class WavelengthAllocator:
    """Static division of the wavelength comb into virtual channels."""

    def __init__(self, total_wavelengths: int, num_virtual_channels: int) -> None:
        if total_wavelengths < num_virtual_channels:
            raise ValueError(
                f"cannot split {total_wavelengths} wavelengths into "
                f"{num_virtual_channels} virtual channels"
            )
        if num_virtual_channels < 1:
            raise ValueError("need at least one virtual channel")
        self.total_wavelengths = total_wavelengths
        self.num_virtual_channels = num_virtual_channels

    def allocate(self) -> List[WavelengthGroup]:
        """Split wavelengths as evenly as possible (remainder to the low
        virtual channels, matching a static hardware comb filter)."""
        base = self.total_wavelengths // self.num_virtual_channels
        extra = self.total_wavelengths % self.num_virtual_channels
        groups: List[WavelengthGroup] = []
        cursor = 0
        for vc in range(self.num_virtual_channels):
            width = base + (1 if vc < extra else 0)
            groups.append(
                WavelengthGroup(vc, tuple(range(cursor, cursor + width)))
            )
            cursor += width
        return groups

    @staticmethod
    def verify_disjoint(groups: Sequence[WavelengthGroup]) -> bool:
        """True when no wavelength appears in two groups (no conflicts)."""
        seen: set[int] = set()
        for g in groups:
            for w in g.wavelengths:
                if w in seen:
                    return False
                seen.add(w)
        return True
