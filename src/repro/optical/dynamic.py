"""Dynamic wavelength allocation (extension).

Table I's Ohm-GPU uses *static* channel division: each memory controller
permanently owns 16 of the 96 wavelengths.  The interface-design work
the paper builds on ([38], Li et al., HPCA'13) instead assigns
wavelengths to controllers on demand.  This module implements that
alternative policy so the design choice can be studied: dynamic
division helps when controller load is skewed but pays a reallocation
(MRR retuning) latency on every rebalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.optical.mrr import FULL_TUNE_PS


@dataclass
class AllocationDecision:
    """Result of one rebalance."""

    wavelengths_per_controller: Dict[int, int]
    retuned_wavelengths: int

    @property
    def retune_latency_ps(self) -> int:
        # Retunes happen in parallel per ring; the channel pays one
        # tuning window if anything moved at all.
        return FULL_TUNE_PS if self.retuned_wavelengths else 0


class DynamicWavelengthAllocator:
    """Demand-proportional wavelength assignment with hysteresis.

    Controllers report queue depths; wavelengths are redistributed
    proportionally, with every controller guaranteed at least
    ``min_per_controller`` so no one starves.  A rebalance only happens
    when the ideal share of some controller differs from its current
    share by more than ``hysteresis`` wavelengths — constant churn would
    burn tuning time for nothing.
    """

    def __init__(
        self,
        total_wavelengths: int,
        num_controllers: int,
        min_per_controller: int = 4,
        hysteresis: int = 2,
    ) -> None:
        if total_wavelengths < num_controllers * min_per_controller:
            raise ValueError("not enough wavelengths for the guaranteed minimum")
        if num_controllers < 1:
            raise ValueError("need at least one controller")
        self.total = total_wavelengths
        self.n = num_controllers
        self.min_per_controller = min_per_controller
        self.hysteresis = hysteresis
        base = total_wavelengths // num_controllers
        extra = total_wavelengths % num_controllers
        self.current: Dict[int, int] = {
            i: base + (1 if i < extra else 0) for i in range(num_controllers)
        }
        self.rebalances = 0

    def _ideal(self, demands: List[float]) -> Dict[int, int]:
        """Demand-proportional split respecting the guaranteed minimum."""
        if len(demands) != self.n:
            raise ValueError(f"expected {self.n} demand values")
        if any(d < 0 for d in demands):
            raise ValueError("demands must be non-negative")
        floor_total = self.min_per_controller * self.n
        spare = self.total - floor_total
        total_demand = sum(demands)
        shares = {i: self.min_per_controller for i in range(self.n)}
        if total_demand > 0:
            fractional = [(spare * d / total_demand, i) for i, d in enumerate(demands)]
            whole = 0
            for amount, i in fractional:
                shares[i] += int(amount)
                whole += int(amount)
            # Distribute the rounding remainder to the largest fractions.
            remainder = spare - whole
            for _, i in sorted(
                fractional, key=lambda t: t[0] - int(t[0]), reverse=True
            )[:remainder]:
                shares[i] += 1
        else:
            # Idle system: fall back to an even split.
            base, extra = divmod(spare, self.n)
            for i in range(self.n):
                shares[i] += base + (1 if i < extra else 0)
        return shares

    def rebalance(self, demands: List[float]) -> AllocationDecision:
        """Recompute shares; no-op inside the hysteresis band."""
        ideal = self._ideal(demands)
        if all(
            abs(ideal[i] - self.current[i]) <= self.hysteresis for i in range(self.n)
        ):
            return AllocationDecision(dict(self.current), retuned_wavelengths=0)
        # Every wavelength that changes hands retunes *two* rings: the
        # losing controller detunes its ring off the wavelength and the
        # gaining controller tunes one onto it (HPCA'13 §III).  Gains
        # and losses are symmetric (the total is conserved), so count
        # both sides: sum of |delta| = 2 x wavelengths moved = rings
        # retuned.
        moved = sum(
            abs(ideal[i] - self.current[i]) for i in range(self.n)
        )
        self.current = ideal
        self.rebalances += 1
        return AllocationDecision(dict(ideal), retuned_wavelengths=moved)

    def share(self, controller: int) -> int:
        return self.current[controller]
