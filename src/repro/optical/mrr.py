"""Micro-ring resonator (MRR) model.

An MRR couples the laser light of one wavelength when tuned into
resonance.  Ohm-GPU's enabling trick (Section IV-C) is the *half-coupled*
state from [53]: tuned slightly off resonance (λ0 → λ0'), the ring
absorbs only part of the light, so a downstream device can reuse or
snarf the residual signal — that is what creates the second route in the
same waveguide.

Timing constants from the paper: a full on/off retune takes 100 ps; the
fine tune into partial resonance takes 500 ps (5x).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

FULL_TUNE_PS = 100
FINE_TUNE_PS = 500

# Fraction of the incident light power left in the waveguide after the
# ring interacts with it.
_PASS_FRACTION = {
    "non_coupled": 1.0,
    "half_coupled": 0.5,
    "fully_coupled": 0.0,
}


class CouplingState(enum.Enum):
    NON_COUPLED = "non_coupled"
    HALF_COUPLED = "half_coupled"
    FULLY_COUPLED = "fully_coupled"

    @property
    def pass_fraction(self) -> float:
        return _PASS_FRACTION[self.value]


@dataclass
class MicroRingResonator:
    """One ring: state + tuning-time/energy accounting."""

    state: CouplingState = CouplingState.NON_COUPLED
    tuning_fj_per_bit: float = 200.0
    retunes: int = 0
    fine_retunes: int = 0

    def tune(self, target: CouplingState) -> int:
        """Switch coupling state; returns the tuning latency in ps."""
        if target is self.state:
            return 0
        fine = (
            target is CouplingState.HALF_COUPLED
            or self.state is CouplingState.HALF_COUPLED
        )
        self.state = target
        if fine:
            self.fine_retunes += 1
            return FINE_TUNE_PS
        self.retunes += 1
        return FULL_TUNE_PS

    def pass_power(self, incident_mw: float) -> float:
        """Optical power continuing down the waveguide past this ring."""
        if incident_mw < 0:
            raise ValueError("negative optical power")
        return incident_mw * self.state.pass_fraction

    def absorbed_power(self, incident_mw: float) -> float:
        """Optical power coupled into the ring (what a detector senses)."""
        return incident_mw - self.pass_power(incident_mw)

    def modulate_bit(self, bit: int, incident_mw: float, half_coupled_tx: bool) -> float:
        """Light power leaving a *transmitter* ring for data bit ``bit``.

        A conventional transmitter fully couples the light for a 0 (low
        transmission) and passes it for a 1.  A half-coupled transmitter
        (Ohm-BW, Fig. 13b) keeps >= half power even for a 0 so that a
        downstream transmitter can re-modulate the residue.
        """
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if bit == 1:
            return incident_mw
        return incident_mw * (0.5 if half_coupled_tx else 0.0)
