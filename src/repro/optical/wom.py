"""Write-once-memory (WOM) coding for dual routes (Section V-B, Fig. 14).

Ohm-GPU uses the classic Rivest–Shamir ⟨2,3⟩ WOM code: two generations
of 2-bit data share one 3-bit light signal.  The first writer (the
memory controller) modulates a weight-≤1 code; the second writer (the
XPoint controller) can only *add* light — exactly the WOM constraint —
and reaches the complement codes.  Receivers decode by codeword weight.

Cost: 3 light bits carry 2 data bits per writer, so the effective
channel bandwidth for memory requests drops to 2/3 (the 33 % loss the
paper quotes for Ohm-WOM).
"""

from __future__ import annotations

from typing import List, Tuple

# First-generation codes: weight <= 1.
_GEN1 = {0b00: 0b000, 0b01: 0b001, 0b10: 0b010, 0b11: 0b100}
# Second generation = bitwise complement of the first.
_GEN2 = {d: c ^ 0b111 for d, c in _GEN1.items()}
_GEN1_INV = {c: d for d, c in _GEN1.items()}
_GEN2_INV = {c: d for d, c in _GEN2.items()}

EFFECTIVE_BANDWIDTH_FRACTION = 2.0 / 3.0


def _weight(code: int) -> int:
    return bin(code).count("1")


class WomCodec:
    """Encode/decode 2-bit symbols through the ⟨2,3⟩ WOM code."""

    data_bits = 2
    code_bits = 3

    def encode_first(self, data: int) -> int:
        """First-generation (memory-controller) write code."""
        self._check_data(data)
        return _GEN1[data]

    def encode_second(self, data: int, current: int) -> int:
        """Second-generation (XPoint-controller) write code.

        ``current`` is the code already on the light.  If the light
        already decodes to ``data`` nothing changes; otherwise the
        complement code is used, which only ever *sets* bits.
        """
        self._check_data(data)
        self._check_code(current)
        if self.decode(current) == data:
            return current
        target = _GEN2[data]
        if target & current != current:
            raise ValueError(
                f"WOM violation: {current:03b} -> {target:03b} clears a bit"
            )
        return target

    def decode(self, code: int) -> int:
        """Decode either generation by codeword weight."""
        self._check_code(code)
        if _weight(code) <= 1:
            return _GEN1_INV[code]
        return _GEN2_INV[code]

    def encode_stream_first(self, bits: List[int]) -> List[int]:
        """Encode a bit stream 2 bits at a time (zero-padded)."""
        out: List[int] = []
        for i in range(0, len(bits), 2):
            pair = bits[i : i + 2] + [0] * (2 - len(bits[i : i + 2]))
            code = self.encode_first(pair[0] << 1 | pair[1])
            out.extend((code >> 2 & 1, code >> 1 & 1, code & 1))
        return out

    def overhead_bits(self, data_bits: int) -> int:
        """Light bits needed to carry ``data_bits`` of payload.

        >>> WomCodec().overhead_bits(1024)
        1536
        """
        symbols = (data_bits + 1) // 2
        return symbols * 3

    @staticmethod
    def _check_data(data: int) -> None:
        if not 0 <= data <= 0b11:
            raise ValueError(f"data symbol must be 2 bits, got {data}")

    @staticmethod
    def _check_code(code: int) -> None:
        if not 0 <= code <= 0b111:
            raise ValueError(f"codeword must be 3 bits, got {code}")


def two_writers_roundtrip(d1: int, d2: int) -> Tuple[int, int]:
    """Model Fig. 14: writer 1 sends ``d1``, writer 2 overlays ``d2``.

    Returns what each receiver decodes: ``(first_hop, second_hop)``.
    """
    codec = WomCodec()
    light = codec.encode_first(d1)
    first_decoded = codec.decode(light)
    light = codec.encode_second(d2, light)
    second_decoded = codec.decode(light)
    return first_decoded, second_decoded
