"""DDR timing arithmetic.

Latencies follow the classic open-page policy:

* row hit        -> tCL
* row closed     -> tRCD + tCL
* row conflict   -> tRP + tRCD + tCL

All methods return picoseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import DramTimingConfig
from repro.sim.engine import ns


class AccessOutcome(enum.Enum):
    ROW_HIT = "row_hit"
    ROW_CLOSED = "row_closed"
    ROW_CONFLICT = "row_conflict"


@dataclass(frozen=True, slots=True)
class DramTiming:
    """Precomputed picosecond timing derived from a config."""

    t_rcd_ps: int
    t_rp_ps: int
    t_cl_ps: int
    t_rrd_ps: int
    t_burst_ps: int
    refresh_interval_ps: int
    refresh_latency_ps: int

    @classmethod
    def from_config(cls, cfg: DramTimingConfig) -> "DramTiming":
        return cls(
            t_rcd_ps=ns(cfg.t_rcd_ns),
            t_rp_ps=ns(cfg.t_rp_ns),
            t_cl_ps=ns(cfg.t_cl_ns),
            t_rrd_ps=ns(cfg.t_rrd_ns),
            t_burst_ps=ns(cfg.t_burst_ns),
            refresh_interval_ps=ns(cfg.refresh_interval_ns),
            refresh_latency_ps=ns(cfg.refresh_latency_ns),
        )

    def access_latency_ps(self, outcome: AccessOutcome) -> int:
        """Time until the data is available (what the requester sees)."""
        if outcome is AccessOutcome.ROW_HIT:
            return self.t_cl_ps
        if outcome is AccessOutcome.ROW_CLOSED:
            return self.t_rcd_ps + self.t_cl_ps
        return self.t_rp_ps + self.t_rcd_ps + self.t_cl_ps

    def access_occupancy_ps(self, outcome: AccessOutcome) -> int:
        """Time the bank is blocked: column accesses to an open row
        pipeline at the burst rate, so occupancy swaps tCL for tBURST."""
        if outcome is AccessOutcome.ROW_HIT:
            return self.t_burst_ps
        if outcome is AccessOutcome.ROW_CLOSED:
            return self.t_rcd_ps + self.t_burst_ps
        return self.t_rp_ps + self.t_rcd_ps + self.t_burst_ps
