"""A DRAM device: a set of banks behind an address decoder plus refresh.

Refresh is modelled as periodic whole-device unavailability windows
(tREFI / tRFC), which is the granularity the evaluation needs — the
paper only relies on refresh as the window in which naive designs could
sneak migrations through (Section IV-B), an approach it rejects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import DramTimingConfig
from repro.dram.bank import Bank, BankState
from repro.dram.timing import DramTiming
from repro.sim.stats import Stats


@dataclass(frozen=True, slots=True)
class DramAddress:
    bank: int
    row: int
    col: int


class DramDevice:  # reprolint: allow(R2) the slice fast path probes dram.__dict__ to detect instance patches (core/slices.py _dram_constant_pack)
    """Bank array + address decode for one DRAM device."""

    def __init__(
        self,
        cfg: DramTimingConfig,
        capacity_bytes: int,
        stats: Optional[Stats] = None,
        name: str = "dram",
        enable_refresh: bool = True,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.cfg = cfg
        self.capacity_bytes = capacity_bytes
        self.timing = DramTiming.from_config(cfg)
        self.banks = [Bank(self.timing) for _ in range(cfg.banks_per_device)]
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self.enable_refresh = enable_refresh
        rows_total = max(1, capacity_bytes // cfg.row_bytes)
        self.rows_per_bank = max(1, rows_total // cfg.banks_per_device)
        # Hot-path accounting: pre-formatted keys into the shared
        # counter dict (see DESIGN.md, "Performance").
        self._cdict = self.stats.counters
        self._k_refresh_stalls = f"{name}.refresh_stalls"
        self._k_accesses = f"{name}.accesses"
        self._k_writes = f"{name}.writes"
        self._k_reads = f"{name}.reads"
        self._k_row_hits = f"{name}.row_hits"
        self._k_activations = f"{name}.activations"
        self._num_banks = len(self.banks)
        # Demand-path flattening: the three open-page outcomes resolve
        # to constant (latency, occupancy) pairs, precomputed so
        # :meth:`access` runs the bank state machine inline with plain
        # integer adds — no timing-table or classify calls per access.
        t = self.timing
        self._row_bytes = cfg.row_bytes
        self._hit_lat = t.t_cl_ps
        self._hit_occ = t.t_burst_ps
        self._closed_lat = t.t_rcd_ps + t.t_cl_ps
        self._closed_occ = t.t_rcd_ps + t.t_burst_ps
        self._conflict_lat = t.t_rp_ps + t.t_rcd_ps + t.t_cl_ps
        self._conflict_occ = t.t_rp_ps + t.t_rcd_ps + t.t_burst_ps
        # One-tuple constant pack for :meth:`access`: everything the
        # per-access state machine needs, loaded with a single unpack
        # instead of a dozen attribute chains.  All entries are
        # construction-time constants (or stable containers).
        self._fp = (
            self.enable_refresh,
            t.refresh_interval_ps,
            t.refresh_latency_ps,
            self.capacity_bytes,
            self._row_bytes,
            self._num_banks,
            self.rows_per_bank,
            self.banks,
            BankState.ACTIVE,
            BankState.IDLE,
            self._hit_lat,
            self._hit_occ,
            self._closed_lat,
            self._closed_occ,
            self._conflict_lat,
            self._conflict_occ,
        )

    def decode(self, addr: int) -> DramAddress:
        """Row-interleaved mapping: consecutive rows hit different banks."""
        if addr < 0:
            raise ValueError("negative address")
        line = addr % self.capacity_bytes
        row_index = line // self.cfg.row_bytes
        col = line % self.cfg.row_bytes
        bank = row_index % len(self.banks)
        row = (row_index // len(self.banks)) % self.rows_per_bank
        return DramAddress(bank=bank, row=row, col=col)

    def _refresh_delay(self, now_ps: int) -> int:
        """Extra wait if ``now_ps`` lands inside a refresh window."""
        if not self.enable_refresh:
            return 0
        interval = self.timing.refresh_interval_ps
        offset = now_ps % interval
        window = self.timing.refresh_latency_ps
        if offset < window:
            self._cdict[self._k_refresh_stalls] += 1
            return window - offset
        return 0

    def access(self, addr: int, is_write: bool, now_ps: int) -> int:
        """Issue a column access; returns the completion time (ps).

        Inlines :meth:`decode` (address math only — no
        :class:`DramAddress` record is allocated per access), the
        refresh-window check, *and* the bank's row-buffer state machine
        against the precomputed outcome timings; this runs once or more
        per demand request.  Keep it in lock-step with
        :meth:`Bank.access` — the audit reconciles both ledgers.
        """
        if addr < 0:
            raise ValueError("negative address")
        (
            enable_refresh, refresh_interval, refresh_window,
            capacity, row_bytes, num_banks, rows_per_bank, banks,
            ACTIVE, IDLE,
            hit_lat, hit_occ, closed_lat, closed_occ,
            conflict_lat, conflict_occ,
        ) = self._fp
        counters = self._cdict
        if enable_refresh:
            offset = now_ps % refresh_interval
            if offset < refresh_window:
                counters[self._k_refresh_stalls] += 1
                now_ps += refresh_window - offset
        row_index = (addr % capacity) // row_bytes
        bank = banks[row_index % num_banks]
        row = (row_index // num_banks) % rows_per_bank
        busy = bank.busy_until_ps
        start = now_ps if now_ps > busy else busy
        if bank.state is ACTIVE and bank.open_row == row:
            bank.row_hits += 1
            bank.accesses += 1
            bank.busy_until_ps = start + hit_occ
            counters[self._k_accesses] += 1
            counters[self._k_writes if is_write else self._k_reads] += 1
            counters[self._k_row_hits] += 1
            return start + hit_lat
        if bank.state is IDLE:
            latency = closed_lat
            occupancy = closed_occ
        else:
            latency = conflict_lat
            occupancy = conflict_occ
        bank.activations += 1
        bank.accesses += 1
        bank.state = ACTIVE
        bank.open_row = row
        bank.busy_until_ps = start + occupancy
        counters[self._k_accesses] += 1
        counters[self._k_writes if is_write else self._k_reads] += 1
        counters[self._k_activations] += 1
        return start + latency

    def activate_for_swap(self, addr: int, now_ps: int) -> int:
        """Preset the target bank for an externally driven swap."""
        loc = self.decode(addr)
        return self.banks[loc.bank].activate(loc.row, now_ps)

    def occupy_bank(self, addr: int, now_ps: int, duration_ps: int) -> tuple[int, int]:
        """Reserve the addressed bank for the XPoint DDR sequence generator."""
        loc = self.decode(addr)
        return self.banks[loc.bank].occupy(now_ps, duration_ps)

    def bank_busy_until(self, addr: int) -> int:
        return self.banks[self.decode(addr).bank].busy_until_ps

    @property
    def total_activations(self) -> int:
        """All row activations, demand *and* swap presets.

        The ``<name>.activations`` stats counter deliberately counts
        only demand-path activations (it feeds the Fig. 19 energy
        model at the paper's granularity); swap presets issued through
        :meth:`activate_for_swap` are visible here and in
        :attr:`total_preset_activations`, and the audit layer
        reconciles ``counter == total_activations -
        total_preset_activations`` exactly.
        """
        return sum(b.activations for b in self.banks)

    @property
    def total_preset_activations(self) -> int:
        """Row activations issued as swap presets (:meth:`activate_for_swap`)."""
        return sum(b.preset_activations for b in self.banks)

    @property
    def total_occupancies(self) -> int:
        """Bulk bank reservations (page streams driven by an external
        engine through :meth:`occupy_bank`)."""
        return sum(b.occupancies for b in self.banks)

    @property
    def total_accesses(self) -> int:
        return sum(b.accesses for b in self.banks)
