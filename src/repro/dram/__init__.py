"""DRAM device substrate: banks, row buffers, DDR timing and refresh."""

from repro.dram.bank import Bank, BankState
from repro.dram.device import DramDevice
from repro.dram.timing import AccessOutcome, DramTiming

__all__ = ["Bank", "BankState", "DramDevice", "DramTiming", "AccessOutcome"]
