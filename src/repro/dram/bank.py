"""A single DRAM bank with an open row buffer.

The bank tracks when it becomes free (``busy_until_ps``) and which row
its row buffer holds.  The swap function of Ohm-GPU (Section V-A)
requires the *memory controller* to preset a bank into the activated
state before handing control to the XPoint controller's DDR sequence
generator, so activation is exposed as a separate operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import AccessOutcome, DramTiming


class BankState(enum.Enum):
    IDLE = "idle"  # precharged, no open row
    ACTIVE = "active"  # a row is latched in the row buffer


@dataclass(slots=True)
class Bank:
    """Row-buffer state machine for one bank."""

    timing: DramTiming
    state: BankState = BankState.IDLE
    open_row: Optional[int] = None
    busy_until_ps: int = 0
    # Counters the device aggregates for the energy model.  The audit
    # layer (sim/audit.py) reconciles these against the device-level
    # stats counters, so every path that touches the bank must keep its
    # own ledger: ``activations`` counts *all* row activations,
    # ``preset_activations`` the subset driven by :meth:`activate`
    # (swap presets, which the demand-path device counter deliberately
    # excludes), and ``occupancies`` the bulk :meth:`occupy`
    # reservations (externally driven page streams that perform no
    # column access through this state machine).  Without the latter
    # two, a swap-preset activation looked like an activation that did
    # no work — per-bank ``activations`` could silently exceed
    # ``accesses``, invisible to every counter-based test.
    activations: int = 0
    accesses: int = 0
    row_hits: int = 0
    preset_activations: int = 0
    occupancies: int = 0

    def classify(self, row: int) -> AccessOutcome:
        if self.state is BankState.IDLE:
            return AccessOutcome.ROW_CLOSED
        if self.open_row == row:
            return AccessOutcome.ROW_HIT
        return AccessOutcome.ROW_CONFLICT

    def access(self, row: int, now_ps: int) -> tuple[int, AccessOutcome]:
        """Perform a column access to ``row``.

        Returns ``(finish_ps, outcome)`` where finish is when the data
        is available.  The bank itself is only *occupied* for the
        pipelined occupancy (burst-rate column accesses), so back-to-back
        row hits stream rather than serializing on tCL.
        """
        start = max(now_ps, self.busy_until_ps)
        outcome = self.classify(row)
        latency = self.timing.access_latency_ps(outcome)
        occupancy = self.timing.access_occupancy_ps(outcome)
        if outcome is not AccessOutcome.ROW_HIT:
            self.activations += 1
        else:
            self.row_hits += 1
        self.accesses += 1
        self.state = BankState.ACTIVE
        self.open_row = row
        self.busy_until_ps = start + occupancy
        return start + latency, outcome

    def activate(self, row: int, now_ps: int) -> int:
        """Preset the bank to ACTIVE on ``row`` (used before SWAP-CMD).

        Returns the time at which the row is latched.
        """
        start = max(now_ps, self.busy_until_ps)
        if self.state is BankState.ACTIVE and self.open_row == row:
            return start
        latency = self.timing.t_rcd_ps
        if self.state is BankState.ACTIVE:
            latency += self.timing.t_rp_ps
        self.activations += 1
        self.preset_activations += 1
        self.state = BankState.ACTIVE
        self.open_row = row
        self.busy_until_ps = start + latency
        return self.busy_until_ps

    def precharge(self, now_ps: int) -> int:
        """Close the row buffer; returns completion time."""
        start = max(now_ps, self.busy_until_ps)
        if self.state is BankState.IDLE:
            return start
        self.state = BankState.IDLE
        self.open_row = None
        self.busy_until_ps = start + self.timing.t_rp_ps
        return self.busy_until_ps

    def occupy(self, now_ps: int, duration_ps: int) -> tuple[int, int]:
        """Reserve the bank for an external engine (swap function).

        Returns ``(start_ps, end_ps)``.
        """
        start = max(now_ps, self.busy_until_ps)
        end = start + duration_ps
        self.busy_until_ps = end
        self.occupancies += 1
        return start, end
