"""Access-frequency tracking for planar-mode migration decisions.

A page is *hot* once it collects ``threshold`` accesses inside the
current decay window; counters halve every ``decay_accesses`` tracked
accesses so stale history ages out (a standard CLOCK-ish approximation
of the paper's "intensive memory accesses" trigger).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable


class HotnessTracker:
    """Per-key access counters with periodic exponential decay."""

    def __init__(self, threshold: int, decay_accesses: int = 4096) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if decay_accesses < 1:
            raise ValueError("decay window must be >= 1")
        self.threshold = threshold
        self.decay_accesses = decay_accesses
        self._counts: Dict[Hashable, int] = defaultdict(int)
        self._since_decay = 0
        self.total_tracked = 0

    def record(self, key: Hashable) -> bool:
        """Count one access; returns True when ``key`` just turned hot."""
        self.total_tracked += 1
        self._since_decay += 1
        if self._since_decay >= self.decay_accesses:
            self._decay()
        counts = self._counts
        count = counts[key] + 1
        counts[key] = count
        return count == self.threshold

    def reset(self, key: Hashable) -> None:
        """Forget a key (called after it has been migrated)."""
        self._counts.pop(key, None)

    def count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def is_hot(self, key: Hashable) -> bool:
        return self._counts.get(key, 0) >= self.threshold

    def _decay(self) -> None:
        self._since_decay = 0
        dead = []
        for key in self._counts:
            self._counts[key] >>= 1
            if self._counts[key] == 0:
                dead.append(key)
        for key in dead:
            del self._counts[key]
