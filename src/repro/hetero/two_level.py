"""Two-level memory mode: DRAM as a direct-mapped cache of XPoint.

Fig. 7b / Section III-B: the request address decodes into index/tag/
offset; the controller reads the addressed DRAM line, whose ECC region
also carries the metadata (1 valid bit, 1 dirty bit, 3–6 tag bits) — so
tag check and data fetch are a *single* DRAM access, unlike traditional
DRAM caches that pay two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.xpoint.ecc import SecDedCodec


@dataclass(slots=True, unsafe_hash=True)
class CacheLookup:
    """Result of the tag-check access.

    One is produced per request in two-level mode, so this is a slotted
    (but not frozen) record — frozen dataclasses pay an
    ``object.__setattr__`` per field per lookup.
    """

    hit: bool
    set_index: int
    tag: int
    victim_tag: int  # tag currently resident (meaningful on miss)
    victim_dirty: bool
    victim_valid: bool


class DramCacheDirectory:
    """Valid/dirty/tag state of the direct-mapped DRAM cache.

    The actual metadata would live in each DRAM line's ECC region; this
    directory mirrors it so the simulator can answer hit/miss without
    materialising line contents.  ``metadata_word``/``parse_metadata``
    round-trip the packed layout through the real SECDED codec to show
    the encoding is feasible.
    """

    def __init__(self, num_sets: int) -> None:
        if num_sets < 1:
            raise ValueError("cache needs at least one set")
        self.num_sets = num_sets
        self._valid: List[bool] = [False] * num_sets
        self._dirty: List[bool] = [False] * num_sets
        self._tag: List[int] = [0] * num_sets
        self.hits = 0
        self.misses = 0
        self._codec = SecDedCodec()

    def decode_addr(self, line_index: int) -> tuple[int, int]:
        """Line index -> (set, tag)."""
        return line_index % self.num_sets, line_index // self.num_sets

    def lookup(self, line_index: int) -> CacheLookup:
        s = line_index % self.num_sets
        tag = line_index // self.num_sets
        valid = self._valid[s]
        victim_tag = self._tag[s]
        hit = valid and victim_tag == tag
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return CacheLookup(hit, s, tag, victim_tag, self._dirty[s], valid)

    def fill(self, line_index: int, dirty: bool = False) -> None:
        """Install a line after a miss fill."""
        s, tag = self.decode_addr(line_index)
        self._valid[s] = True
        self._dirty[s] = dirty
        self._tag[s] = tag

    def mark_dirty(self, line_index: int) -> None:
        s, tag = self.decode_addr(line_index)
        if not (self._valid[s] and self._tag[s] == tag):
            raise ValueError("marking a non-resident line dirty")
        self._dirty[s] = True

    def victim_line_index(self, lookup: CacheLookup) -> int:
        """Reconstruct the XPoint line index of the line being evicted."""
        return lookup.victim_tag * self.num_sets + lookup.set_index

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # --- metadata-in-ECC packing (Section III-B) ---

    def metadata_word(self, line_index: int) -> int:
        """Pack valid/dirty/tag alongside 56 bits of line payload hash.

        Returns a 72-bit SECDED codeword as it would be stored in the
        line's ECC region.
        """
        s, tag = self.decode_addr(line_index)
        if tag >= 1 << 6:
            raise ValueError("tag exceeds the 6 bits available in the ECC region")
        meta = (1 << 7) | (int(self._dirty[s]) << 6) | tag
        return self._codec.encode(meta)

    def parse_metadata(self, codeword: int) -> tuple[bool, bool, int]:
        """(valid, dirty, tag) from an ECC-region codeword."""
        result = self._codec.decode(codeword)
        if result.double_error:
            raise ValueError("uncorrectable metadata corruption")
        meta = result.data
        return bool(meta >> 7 & 1), bool(meta >> 6 & 1), meta & 0b111111
