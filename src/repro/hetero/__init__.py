"""Heterogeneous DRAM + XPoint organization (Section III-B).

Two operating modes:

* **planar** — one flat address space; each group holds one DRAM page
  and several XPoint pages, and hot XPoint pages swap into the group's
  DRAM page (OS-transparent migration, inspired by [65]).
* **two-level** — DRAM is a direct-mapped inclusive cache of XPoint with
  the tag/valid/dirty metadata stored in the ECC region of each DRAM
  line [44].
"""

from repro.hetero.hotness import HotnessTracker
from repro.hetero.planar import PlanarMapper, PlanarPlacement
from repro.hetero.two_level import CacheLookup, DramCacheDirectory

__all__ = [
    "HotnessTracker",
    "PlanarMapper",
    "PlanarPlacement",
    "DramCacheDirectory",
    "CacheLookup",
]
