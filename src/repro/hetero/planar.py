"""Planar memory mode: flat address space over page groups (Fig. 7a).

The memory space is split into groups; each group owns **one DRAM page**
and up to ``ratio`` XPoint pages (the DRAM:XPoint capacity ratio, 1:8 in
Table I).  Logical pages are interleaved across groups.  When an XPoint
page turns hot, its data and the group's current DRAM-resident page swap
places; a small per-group mapping table records where each logical slot
lives — the "simplified mapping table" the memory controllers consult on
every request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(slots=True, unsafe_hash=True)
class PlanarPlacement:
    """Where a logical page currently lives.

    A slotted (but not frozen) record: one is produced per memory
    request by the mapping-table lookup, so construction stays
    allocation-cheap — frozen dataclasses pay ``object.__setattr__``
    per field.
    """

    in_dram: bool
    device_page: int  # page index inside the owning device
    group: int
    slot: int


@dataclass(frozen=True)
class SwapPlan:
    """A resolved migration: which physical pages exchange contents."""

    group: int
    hot_slot: int  # slot moving into DRAM
    victim_slot: int  # slot moving out of DRAM (previous resident)
    dram_page: int  # DRAM physical page of the group
    xpoint_page: int  # XPoint physical page the victim moves into


class PlanarMapper:
    """Group table + logical→physical placement for one MC slice."""

    def __init__(self, num_groups: int, slots_per_group: int) -> None:
        if num_groups < 1:
            raise ValueError("need at least one group")
        if slots_per_group < 2:
            raise ValueError("a group needs a DRAM slot and at least one XPoint slot")
        self.num_groups = num_groups
        self.slots_per_group = slots_per_group
        # Which slot is DRAM-resident, per group (initially slot 0).
        self._dram_slot: List[int] = [0] * num_groups
        # Sparse overrides of slot -> XPoint page (identity when absent).
        self._xp_page_of_slot: List[Dict[int, int]] = [dict() for _ in range(num_groups)]
        self.swaps_performed = 0

    def _capacity_error(self, page: int) -> ValueError:
        return ValueError(
            f"logical page {page} exceeds capacity "
            f"({self.num_groups} groups x {self.slots_per_group} slots)"
        )

    def _group_slot(self, page: int) -> tuple[int, int]:
        group = page % self.num_groups
        slot = page // self.num_groups
        if slot >= self.slots_per_group:
            raise self._capacity_error(page)
        return group, slot

    def _xp_page(self, group: int, slot: int) -> int:
        """XPoint physical page for a non-resident slot.

        Identity placement puts slot ``s`` (s >= 1) in the group's XPoint
        page ``s - 1``; swaps leave sparse overrides.
        """
        override = self._xp_page_of_slot[group].get(slot)
        if override is not None:
            return override
        if slot == 0:
            # Slot 0 starts in DRAM and only gains an XPoint page via a
            # swap, which records an override.
            raise KeyError(f"slot 0 of group {group} has no XPoint page yet")
        return group * (self.slots_per_group - 1) + (slot - 1)

    def lookup(self, page: int) -> PlanarPlacement:
        """Mapping-table lookup the memory controller does per request.

        Per-request hot path: ``_group_slot``'s math is inlined (one
        method call saved per demand access); keep the two in sync.
        """
        group = page % self.num_groups
        slot = page // self.num_groups
        if slot >= self.slots_per_group:
            raise self._capacity_error(page)
        if self._dram_slot[group] == slot:
            return PlanarPlacement(True, group, group, slot)
        return PlanarPlacement(False, self._xp_page(group, slot), group, slot)

    def plan_swap(self, page: int) -> Optional[SwapPlan]:
        """Prepare to swap a hot page into DRAM; None if already there."""
        group, slot = self._group_slot(page)
        victim = self._dram_slot[group]
        if victim == slot:
            return None
        return SwapPlan(
            group=group,
            hot_slot=slot,
            victim_slot=victim,
            dram_page=group,
            xpoint_page=self._xp_page(group, slot),
        )

    def commit_swap(self, plan: SwapPlan) -> None:
        """Update the mapping table after the data movement completed."""
        if self._dram_slot[plan.group] != plan.victim_slot:
            raise ValueError("stale swap plan: DRAM resident changed")
        self._dram_slot[plan.group] = plan.hot_slot
        overrides = self._xp_page_of_slot[plan.group]
        overrides[plan.victim_slot] = plan.xpoint_page
        overrides.pop(plan.hot_slot, None)

    def dram_resident_slot(self, group: int) -> int:
        return self._dram_slot[group]
