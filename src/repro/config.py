"""System configuration mirroring Table I of the paper.

All latency values are stored in nanoseconds (as printed in the paper)
and converted to picoseconds at the simulation boundary.  Capacities are
stored in bytes.  The paper scales workload footprints to 8 GB and the
GPU memory down by 12x to keep simulation time tractable; we expose the
same knob as :attr:`SystemConfig.scale_down` and scale further by
default because this simulator is pure Python.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class MemoryMode(enum.Enum):
    """Operating mode of the heterogeneous memory (Section III-B)."""

    PLANAR = "planar"
    TWO_LEVEL = "two_level"


@dataclass(frozen=True)
class GpuConfig:
    """GPU-core side of Table I."""

    num_sms: int = 16
    sm_freq_ghz: float = 1.2
    warps_per_sm: int = 24
    l1_size: int = 48 * KB
    l1_ways: int = 6
    l2_size: int = 6 * MB
    l2_ways: int = 8
    line_bytes: int = 128


@dataclass(frozen=True)
class DramTimingConfig:
    """DRAM timing parameters (Table I, right column)."""

    t_rcd_ns: float = 25.0
    t_rp_ns: float = 10.0
    t_cl_ns: float = 11.0
    t_rrd_ns: float = 5.0
    t_burst_ns: float = 2.0  # one line's data burst (bank occupancy)
    refresh_interval_ns: float = 7_800.0  # tREFI
    refresh_latency_ns: float = 350.0  # tRFC
    banks_per_device: int = 16
    row_bytes: int = 2 * KB


@dataclass(frozen=True)
class XPointConfig:
    """3D XPoint timing from Optane DC PMM measurements [27], [28]."""

    read_ns: float = 190.0
    write_ns: float = 763.0
    banks_per_device: int = 32
    # Optane-like internal block: 256 B, interleaved across banks so a
    # 4 KB page migration spreads over the whole bank array.
    row_bytes: int = 256
    # Start-Gap wear levelling: move the gap once per this many writes.
    start_gap_period: int = 100


@dataclass(frozen=True)
class ElectricalChannelConfig:
    """Baseline GDDR-style electrical channels (Table I)."""

    num_channels: int = 6
    lane_bits: int = 32
    freq_ghz: float = 15.0
    # Energy per bit moved over an electrical lane (pJ/bit).  An optical
    # lane is ~10x cheaper [38], [59]; see OpticalChannelConfig.
    energy_pj_per_bit: float = 5.0

    @property
    def total_bandwidth_bits_per_ns(self) -> float:
        return self.num_channels * self.lane_bits * self.freq_ghz


@dataclass(frozen=True)
class OpticalChannelConfig:
    """Optical channel (Table I): 96-bit @ 30 GHz, six virtual channels."""

    channel_width_bits: int = 96
    freq_ghz: float = 30.0
    num_virtual_channels: int = 6
    num_waveguides: int = 1
    strategy: str = "static"  # static channel division
    # Optical power model (Table I).
    mrr_tuning_fj_per_bit: float = 200.0
    filter_drop_db: float = 1.5
    waveguide_loss_db_per_cm: float = 0.3
    splitter_loss_db: float = 0.2
    detector_loss_db: float = 0.1
    modulator_loss_db: float = 1.0  # worst case of the 0~1 dB range
    laser_power_mw: float = 0.73  # single-wavelength default from [38]
    waveguide_length_cm: float = 4.0
    energy_pj_per_bit: float = 0.5  # ~10x below electrical [59]

    @property
    def vchannel_width_bits(self) -> int:
        return self.channel_width_bits // self.num_virtual_channels

    @property
    def total_bandwidth_bits_per_ns(self) -> float:
        return self.channel_width_bits * self.freq_ghz * self.num_waveguides


@dataclass(frozen=True)
class HeteroConfig:
    """Capacity layout of the heterogeneous memory (Table I)."""

    mode: MemoryMode = MemoryMode.PLANAR
    # DRAM : XPoint capacity ratio — 1:8 planar, 1:64 two-level.
    dram_to_xpoint_ratio: int = 8
    page_bytes: int = 2 * KB
    # A planar-group XPoint page becomes hot after this many accesses
    # within the decay window.
    hot_threshold: int = 14
    hotness_decay_accesses: int = 4096


@dataclass(frozen=True)
class HostConfig:
    """Host DMA / SSD model backing Fig. 3 and the Origin platform."""

    pcie_bandwidth_gb_per_s: float = 16.0
    pcie_latency_us: float = 4.0
    ssd_read_latency_us: float = 20.0  # Z-NAND class device [57]
    ssd_write_latency_us: float = 25.0


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration; one instance fully describes a run."""

    gpu: GpuConfig = field(default_factory=GpuConfig)
    dram_timing: DramTimingConfig = field(default_factory=DramTimingConfig)
    xpoint: XPointConfig = field(default_factory=XPointConfig)
    electrical: ElectricalChannelConfig = field(default_factory=ElectricalChannelConfig)
    optical: OpticalChannelConfig = field(default_factory=OpticalChannelConfig)
    hetero: HeteroConfig = field(default_factory=HeteroConfig)
    host: HostConfig = field(default_factory=HostConfig)
    # Baseline GPU DRAM capacity before scaling: 24 GB (NVIDIA K80).
    base_dram_capacity: int = 24 * GB
    # Paper scales by 12x; we scale much further for pure-Python runs.
    # All capacity *ratios* (DRAM:XPoint, footprint:DRAM) are preserved.
    scale_down: int = 12 * 1024
    # Bandwidth scaling: the scaled-down GPU issues ~1000x fewer
    # requests per second than the real one, so channel/PCIe bandwidths
    # scale down too — otherwise the channel contention the paper
    # studies (Fig. 8: migrations consume 39%/26% of bandwidth) would
    # vanish.  Latency constants are NOT scaled.  The electrical:optical
    # bandwidth equality of Table I is preserved exactly.
    bandwidth_scale_down: int = 24
    # The host PCIe link scales less aggressively: page-fault cost is
    # dominated by its fixed latency, which does not scale.
    host_bandwidth_scale_down: int = 4

    @property
    def dram_capacity(self) -> int:
        return self.base_dram_capacity // self.scale_down

    @property
    def xpoint_capacity(self) -> int:
        return self.dram_capacity * self.hetero.dram_to_xpoint_ratio

    @property
    def hetero_capacity(self) -> int:
        return self.dram_capacity + self.xpoint_capacity

    def with_mode(self, mode: MemoryMode) -> "SystemConfig":
        """Copy of this config switched to ``mode`` with the paper's
        capacity ratio for that mode (1:8 planar, 1:64 two-level)."""
        ratio = 8 if mode is MemoryMode.PLANAR else 64
        hetero = replace(self.hetero, mode=mode, dram_to_xpoint_ratio=ratio)
        return replace(self, hetero=hetero)

    def with_waveguides(self, n: int) -> "SystemConfig":
        """Copy with ``n`` optical waveguides (Fig. 20a sweep)."""
        if n < 1:
            raise ValueError("need at least one waveguide")
        return replace(self, optical=replace(self.optical, num_waveguides=n))

    def to_dict(self) -> dict:
        """JSON-ready nested dict; the result-cache fingerprint input."""
        data = asdict(self)
        data["hetero"]["mode"] = self.hetero.mode.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Inverse of :meth:`to_dict` (``cfg == from_dict(cfg.to_dict())``)."""
        hetero = dict(data["hetero"])
        hetero["mode"] = MemoryMode(hetero["mode"])
        return cls(
            gpu=GpuConfig(**data["gpu"]),
            dram_timing=DramTimingConfig(**data["dram_timing"]),
            xpoint=XPointConfig(**data["xpoint"]),
            electrical=ElectricalChannelConfig(**data["electrical"]),
            optical=OpticalChannelConfig(**data["optical"]),
            hetero=HeteroConfig(**hetero),
            host=HostConfig(**data["host"]),
            base_dram_capacity=data["base_dram_capacity"],
            scale_down=data["scale_down"],
            bandwidth_scale_down=data["bandwidth_scale_down"],
            host_bandwidth_scale_down=data["host_bandwidth_scale_down"],
        )


def default_config(mode: MemoryMode = MemoryMode.PLANAR) -> SystemConfig:
    """The Table I configuration in the requested memory mode."""
    return SystemConfig().with_mode(mode)
